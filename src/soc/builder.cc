#include "builder.hh"

#include "common/logging.hh"

namespace pccs::soc {

PuParams
puTemplate(PuKind kind)
{
    // Characteristic values of the calibrated Xavier-class presets;
    // sizing fields (clock, flops, bandwidths) are left for the
    // builder's arguments.
    PuParams p;
    p.kind = kind;
    switch (kind) {
      case PuKind::Cpu:
        p.overlap = 0.95;
        p.latencySensitivity = 0.06;
        p.fairShareWeight = 1.1;
        break;
      case PuKind::Gpu:
        p.overlap = 0.97;
        p.latencySensitivity = 0.06;
        p.fairShareWeight = 1.0;
        break;
      case PuKind::Dla:
        p.overlap = 0.60;
        p.latencySensitivity = 0.70;
        p.fairShareWeight = 0.8;
        break;
    }
    return p;
}

SocBuilder::SocBuilder(std::string name)
{
    config_.name = std::move(name);
}

SocBuilder &
SocBuilder::memory(GBps peak_bandwidth)
{
    PCCS_ASSERT(peak_bandwidth > 0.0, "peak bandwidth must be > 0");
    MemoryParams m = xavierLike().memory; // calibrated efficiency knobs
    m.peakBandwidth = peak_bandwidth;
    return memory(m);
}

SocBuilder &
SocBuilder::memory(const MemoryParams &params)
{
    config_.memory = params;
    memorySet_ = true;
    return *this;
}

SocBuilder &
SocBuilder::add(PuKind kind, const std::string &name, MHz frequency,
                double flops_per_cycle, GBps interface_bw,
                GBps issue_bw, double default_issue_ratio)
{
    PCCS_ASSERT(frequency > 0.0 && flops_per_cycle > 0.0 &&
                    interface_bw > 0.0,
                "PU '%s' needs positive sizing parameters",
                name.c_str());
    PuParams p = puTemplate(kind);
    p.name = name;
    p.frequency = p.maxFrequency = frequency;
    p.flopsPerCycle = flops_per_cycle;
    p.interfaceBandwidth = interface_bw;
    p.issueBandwidth =
        issue_bw > 0.0 ? issue_bw : default_issue_ratio * interface_bw;
    config_.pus.push_back(p);
    return *this;
}

SocBuilder &
SocBuilder::addCpu(const std::string &name, MHz frequency,
                   double flops_per_cycle, GBps interface_bw,
                   GBps issue_bw)
{
    return add(PuKind::Cpu, name, frequency, flops_per_cycle,
               interface_bw, issue_bw, 105.0 / 93.0);
}

SocBuilder &
SocBuilder::addGpu(const std::string &name, MHz frequency,
                   double flops_per_cycle, GBps interface_bw,
                   GBps issue_bw)
{
    return add(PuKind::Gpu, name, frequency, flops_per_cycle,
               interface_bw, issue_bw, 194.0 / 127.0);
}

SocBuilder &
SocBuilder::addDla(const std::string &name, MHz frequency,
                   double flops_per_cycle, GBps interface_bw,
                   GBps issue_bw)
{
    return add(PuKind::Dla, name, frequency, flops_per_cycle,
               interface_bw, issue_bw, 34.0 / 30.0);
}

SocBuilder &
SocBuilder::addPu(const PuParams &pu)
{
    PCCS_ASSERT(!pu.name.empty(), "PU needs a name");
    config_.pus.push_back(pu);
    return *this;
}

SocConfig
SocBuilder::build() const
{
    if (!memorySet_)
        fatal("SoC '%s': memory subsystem not configured",
              config_.name.c_str());
    if (config_.pus.empty())
        fatal("SoC '%s': no processing units added",
              config_.name.c_str());
    return config_;
}

} // namespace pccs::soc
