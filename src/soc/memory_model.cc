#include "memory_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/statistics.hh"

namespace pccs::soc {

SharedMemorySystem::SharedMemorySystem(const MemoryParams &params)
    : params_(params)
{
    PCCS_ASSERT(params_.peakBandwidth > 0.0, "peak bandwidth must be > 0");
    PCCS_ASSERT(params_.minEfficiency <= params_.baseEfficiency,
                "efficiency floor exceeds base efficiency");
}

GBps
SharedMemorySystem::effectiveBandwidth(
    const std::vector<BandwidthDemand> &demands) const
{
    double total = 0.0;
    for (const auto &d : demands)
        total += d.demand;
    if (total <= 0.0)
        return params_.peakBandwidth * params_.baseEfficiency;

    // Utilization saturates at 1: once the bus is fully loaded, extra
    // *demand* (as opposed to extra served traffic) cannot degrade the
    // row-buffer behavior further. This saturation is what produces
    // the flat tails of the slowdown curves.
    const double util = std::min(1.0, total / params_.peakBandwidth);

    // Mixing index: 0 for a single source, -> 1 as many equal-demand
    // sources interleave (1 - Herfindahl index of demand shares).
    double hhi = 0.0;
    for (const auto &d : demands) {
        const double share = d.demand / total;
        hhi += share * share;
    }
    const double mixing = (1.0 - hhi) * util;

    // Demand-weighted locality deficit of the streams themselves.
    double locality_deficit = 0.0;
    for (const auto &d : demands)
        locality_deficit += (d.demand / total) * (1.0 - d.locality);

    const double efficiency =
        clamp(params_.baseEfficiency - params_.mixPenalty * mixing -
                  params_.localityPenalty * locality_deficit,
              params_.minEfficiency, params_.baseEfficiency);
    return params_.peakBandwidth * efficiency;
}

std::vector<GBps>
SharedMemorySystem::waterFill(const std::vector<BandwidthDemand> &demands,
                              GBps capacity)
{
    const std::size_t n = demands.size();
    std::vector<GBps> grants(n, 0.0);
    double total = 0.0;
    for (const auto &d : demands)
        total += d.demand;
    if (total <= capacity) {
        for (std::size_t i = 0; i < n; ++i)
            grants[i] = demands[i].demand;
        return grants;
    }

    // Find the fill level f such that sum(min(d_i, w_i * f)) == capacity
    // by bisection on f; min(d_i, w_i*f) is monotone in f.
    double lo = 0.0;
    double hi = capacity;
    for (const auto &d : demands)
        if (d.weight > 0.0)
            hi = std::max(hi, d.demand / d.weight);
    for (int iter = 0; iter < 64; ++iter) {
        const double f = 0.5 * (lo + hi);
        double served = 0.0;
        for (const auto &d : demands)
            served += std::min(d.demand, d.weight * f);
        if (served < capacity)
            lo = f;
        else
            hi = f;
    }
    const double fill = 0.5 * (lo + hi);
    for (std::size_t i = 0; i < n; ++i)
        grants[i] = std::min(demands[i].demand, demands[i].weight * fill);
    return grants;
}

AllocationResult
SharedMemorySystem::allocate(
    const std::vector<BandwidthDemand> &demands) const
{
    AllocationResult res;
    res.effectiveBandwidth = effectiveBandwidth(demands);
    res.efficiency = res.effectiveBandwidth / params_.peakBandwidth;

    double total = 0.0;
    for (const auto &d : demands)
        total += d.demand;
    res.loadRatio = res.effectiveBandwidth > 0.0
                        ? std::min(total, res.effectiveBandwidth) /
                              res.effectiveBandwidth
                        : 0.0;

    switch (params_.policy) {
      case AllocationPolicy::FairWaterFill:
        res.grants = waterFill(demands, res.effectiveBandwidth);
        break;
      case AllocationPolicy::Proportional: {
        // The Gables assumption: no reduction until the *nominal* peak
        // is exceeded; then pro-rate demands into the peak.
        res.grants.resize(demands.size());
        const double scale = total > params_.peakBandwidth
                                 ? params_.peakBandwidth / total
                                 : 1.0;
        for (std::size_t i = 0; i < demands.size(); ++i)
            res.grants[i] = demands[i].demand * scale;
        break;
      }
    }
    return res;
}

} // namespace pccs::soc
