/**
 * @file
 * Standalone bandwidth-trace generation: the simulator-side analogue
 * of sampling a hardware bandwidth counter (NVperf/perf style) while
 * a program runs alone. Feeds the phase detector
 * (pccs/phase_detect.hh) for the end-to-end multi-phase pipeline:
 * trace -> phases -> piecewise slowdown prediction.
 */

#ifndef PCCS_SOC_TRACE_HH
#define PCCS_SOC_TRACE_HH

#include <vector>

#include "soc/simulator.hh"

namespace pccs::soc {

/** Options for trace sampling. */
struct TraceOptions
{
    /** Sampling period in seconds. */
    double samplePeriod = 1e-3;
    /**
     * Relative amplitude of multiplicative measurement noise
     * (0 = clean trace). Real bandwidth counters jitter by a few
     * percent between samples.
     */
    double noise = 0.0;
    /** Seed for the noise generator. */
    std::uint64_t seed = 42;
};

/**
 * Sample the standalone bandwidth of a workload on a PU: each phase
 * contributes samples for its standalone duration at its standalone
 * demand (plus optional measurement noise).
 *
 * @return bandwidth samples in GB/s, one per samplePeriod
 */
std::vector<GBps> traceWorkload(const SocSimulator &sim,
                                std::size_t pu_index,
                                const PhasedWorkload &workload,
                                const TraceOptions &opts = {});

} // namespace pccs::soc

#endif // PCCS_SOC_TRACE_HH
