#include "sched_medusa.hh"

// Event-driven audit: pick() is a pure function of (entries, state) —
// it reads the per-channel turn mask and mutates nothing, consumes no
// RNG, and ignores `now` — so skipped no-issuable cycles are pure
// no-ops and the lazy pure-pick channel scan is safe. The only state
// mutation is the turn-mask rotation in onService(), which runs on
// CAS-issue cycles; both cores process every CAS on identical cycles,
// so the masks advance in lockstep. tick() is the default no-op and
// nextTickEvent() stays kNoEvent.
namespace pccs::dram {

MedusaScheduler::MedusaScheduler(const SchedulerParams &params)
    : params_(params)
{
}

std::uint32_t &
MedusaScheduler::channelMask(unsigned channel)
{
    if (channel >= rrMask_.size())
        rrMask_.resize(channel + 1, params_.medusaReservedBankMask);
    return rrMask_[channel];
}

void
MedusaScheduler::onService(const Request &req, Cycles now, unsigned bytes)
{
    (void)now;
    (void)bytes;
    const std::uint32_t reserved = params_.medusaReservedBankMask;
    const std::uint32_t bank_bit = std::uint32_t{1} << req.loc.bank;
    if (!(bank_bit & reserved))
        return;
    // The serviced bank spends its turn; once every reserved bank has
    // spent one, the round restarts with the full reserved set.
    std::uint32_t &mask = channelMask(req.loc.channel);
    mask &= ~bank_bit;
    if (mask == 0)
        mask = reserved;
}

int
MedusaScheduler::pick(unsigned channel,
                      std::span<const QueueEntryView> entries, Cycles now)
{
    (void)now;
    const std::uint32_t reserved = params_.medusaReservedBankMask;
    const std::uint32_t turns = channelMask(channel);

    // Priority tier per entry: 0 = reserved bank holding its turn,
    // 1 = reserved bank out of turn, 2 = non-reserved.
    auto tier = [&](const QueueEntryView &e) -> int {
        const std::uint32_t bit = std::uint32_t{1} << e.req->loc.bank;
        if (!(bit & reserved))
            return 2;
        return (bit & turns) ? 0 : 1;
    };

    auto better = [&](const QueueEntryView &a,
                      const QueueEntryView &b) -> bool {
        const int ta = tier(a);
        const int tb = tier(b);
        if (ta != tb)
            return ta < tb;
        if (ta == 0 && a.req->loc.bank != b.req->loc.bank) {
            // In-turn reserved banks are taken in bank order so the
            // round-robin sequence is deterministic.
            return a.req->loc.bank < b.req->loc.bank;
        }
        if (a.rowHit != b.rowHit)
            return a.rowHit;
        return a.req->arrival < b.req->arrival;
    };

    int best = -1;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (!entries[i].issuable)
            continue;
        if (best < 0 || better(entries[i], entries[best]))
            best = static_cast<int>(i);
    }
    return best;
}

void
registerMedusaPolicy()
{
    registerSchedulerPolicy({
        .name = "MEDUSA",
        .aliases = {},
        .factory =
            [](const SchedulerParams &p) {
                return std::make_unique<MedusaScheduler>(p);
            },
        .pickIsPure = true,
        .preservesRowHits = true,
        .needsTickEvents = false,
    });
}

} // namespace pccs::dram
