#include "sched_medusa.hh"

// Event-driven audit: pick() is a pure function of (entries, state) —
// it reads the per-channel turn mask and mutates nothing, consumes no
// RNG, and ignores `now` — so skipped no-issuable cycles are pure
// no-ops and the lazy pure-pick channel scan is safe. The only state
// mutation is the turn-mask rotation in onService(), which runs on
// CAS-issue cycles; both cores process every CAS on identical cycles,
// so the masks advance in lockstep. tick() is the default no-op and
// nextTickEvent() stays kNoEvent.
//
// Fast-pick audit: the comparator is a strict three-tier ladder keyed
// only on the bank index, and within a tier it is exactly FR-FCFS, so
// each tier maps onto a bank-filtered oldest-hit-else-oldest pass:
// tier 0 (reserved banks holding their turn) picks the lowest bank
// index with any issuable candidate — hit preferred within the bank —
// tier 1 restricts the helper to reserved & ~turns, tier 2 to
// ~reserved. MEDUSA preserves row hits, so a bank's candidates are
// all hits or all non-hits and the per-bank heads cover every case.
namespace pccs::dram {

MedusaScheduler::MedusaScheduler(const SchedulerParams &params)
    : params_(params)
{
}

std::uint32_t &
MedusaScheduler::channelMask(unsigned channel)
{
    if (channel >= rrMask_.size())
        rrMask_.resize(channel + 1, params_.medusaReservedBankMask);
    return rrMask_[channel];
}

void
MedusaScheduler::onService(const Request &req, Cycles now, unsigned bytes)
{
    (void)now;
    (void)bytes;
    const std::uint32_t reserved = params_.medusaReservedBankMask;
    const std::uint32_t bank_bit = std::uint32_t{1} << req.loc.bank;
    if (!(bank_bit & reserved))
        return;
    // The serviced bank spends its turn; once every reserved bank has
    // spent one, the round restarts with the full reserved set.
    std::uint32_t &mask = channelMask(req.loc.channel);
    mask &= ~bank_bit;
    if (mask == 0)
        mask = reserved;
}

int
MedusaScheduler::pick(unsigned channel,
                      std::span<const QueueEntryView> entries, Cycles now)
{
    (void)now;
    const std::uint32_t reserved = params_.medusaReservedBankMask;
    const std::uint32_t turns = channelMask(channel);

    // Priority tier per entry: 0 = reserved bank holding its turn,
    // 1 = reserved bank out of turn, 2 = non-reserved.
    auto tier = [&](const QueueEntryView &e) -> int {
        const std::uint32_t bit = std::uint32_t{1} << e.req->loc.bank;
        if (!(bit & reserved))
            return 2;
        return (bit & turns) ? 0 : 1;
    };

    auto better = [&](const QueueEntryView &a,
                      const QueueEntryView &b) -> bool {
        const int ta = tier(a);
        const int tb = tier(b);
        if (ta != tb)
            return ta < tb;
        if (ta == 0 && a.req->loc.bank != b.req->loc.bank) {
            // In-turn reserved banks are taken in bank order so the
            // round-robin sequence is deterministic.
            return a.req->loc.bank < b.req->loc.bank;
        }
        if (a.rowHit != b.rowHit)
            return a.rowHit;
        return a.req->arrival < b.req->arrival;
    };

    int best = -1;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (!entries[i].issuable)
            continue;
        if (best < 0 || better(entries[i], entries[best]))
            best = static_cast<int>(i);
    }
    return best;
}

int
MedusaScheduler::fastPick(const FastIssueView &view, unsigned channel,
                          Cycles now)
{
    (void)now;
    const std::uint64_t reserved = params_.medusaReservedBankMask;
    const std::uint64_t turns = channelMask(channel);

    // Tier 0: lowest-indexed in-turn reserved bank with an issuable
    // candidate; a hit in that bank beats its oldest non-hit.
    const std::uint64_t in_turn =
        (view.hitBanks() | view.otherBanks()) & turns;
    if (in_turn) {
        const unsigned b =
            static_cast<unsigned>(std::countr_zero(in_turn));
        const int s = view.oldestHitSlot(b);
        return s >= 0 ? s : view.oldestOtherSlot(b);
    }
    // Tier 1: reserved banks out of turn; tier 2: everyone else.
    const int s = fastPickOldestHitElseOldest(view, reserved & ~turns);
    return s >= 0 ? s : fastPickOldestHitElseOldest(view, ~reserved);
}

void
registerMedusaPolicy()
{
    registerSchedulerPolicy({
        .name = "MEDUSA",
        .aliases = {},
        .factory =
            [](const SchedulerParams &p) {
                return std::make_unique<MedusaScheduler>(p);
            },
        .pickIsPure = true,
        .preservesRowHits = true,
        .needsTickEvents = false,
        .fastPickEligible = true,
        .fastPickNote = {},
    });
}

} // namespace pccs::dram
