/**
 * @file
 * Multi-memory-controller DRAM subsystem (the Section 5 extension):
 * several independent memory controllers — each with its own request
 * buffer, banks, and scheduling-policy instance — behind an address
 * router.
 *
 * Two address-to-MC mappings are provided, matching the cases the
 * paper discusses:
 *
 *  - LineInterleaved: consecutive cache lines rotate across MCs (the
 *    wide-bus construction recent HSM-SoCs use; applications see the
 *    aggregate bandwidth without placement effort);
 *  - RangePartitioned: each MC owns a contiguous slice of the address
 *    space (sources whose footprints land in different slices do not
 *    interfere at all — the isolation/coordination case the paper
 *    says PCCS can be extended to by considering the mapping).
 *
 * Three run loops advance the subsystem (McRunMode): the lockstep
 * reference oracle, a cycle-skipping event-driven loop fusing every
 * controller's and generator's wake bound into one min-scan, and an
 * opt-in sharded-parallel loop that spreads controllers over
 * runner::SweepEngine worker threads — whole-run independent shards
 * when the mapping provably decomposes, one-cycle epoch barriers
 * otherwise. All three are bit-exact against one another
 * (tests/test_multimc_equivalence.cc).
 */

#ifndef PCCS_DRAM_MULTI_MC_HH
#define PCCS_DRAM_MULTI_MC_HH

#include <memory>
#include <string_view>
#include <vector>

#include "dram/controller.hh"
#include "dram/run_mode.hh"
#include "dram/traffic.hh"

namespace pccs::dram {

/** How physical addresses map onto the memory controllers. */
enum class McMapping
{
    LineInterleaved,
    RangePartitioned,
};

/** @return display name of a mapping. */
const char *mcMappingName(McMapping mapping);

/**
 * A set of memory controllers behind one port, plus synthetic cores.
 */
class MultiMcSystem : public MemoryPort
{
  public:
    /**
     * @param per_mc_cfg configuration of each controller (so total
     *        capacity = num_mcs x per_mc_cfg.peakBandwidth())
     * @param num_mcs number of controllers
     * @param policy registered scheduler-policy name (one instance
     *        per MC — MCs do not share scheduler state, the
     *        coordination question the paper raises)
     * @param mode which run loop advances the subsystem
     */
    MultiMcSystem(const DramConfig &per_mc_cfg, unsigned num_mcs,
                  std::string_view policy, McMapping mapping,
                  const SchedulerParams &sched_params = {},
                  McRunMode mode = defaultMcRunMode());

    // MemoryPort
    bool enqueue(unsigned source, Addr addr, bool is_write,
                 Cycles now) override;
    unsigned lineBytes() const override;
    double cycleSeconds() const override;
    Addr addressSpan() const override;

    /** Add a synthetic core; returns its index. */
    std::size_t addGenerator(const TrafficParams &params);

    /** Advance the whole subsystem by `cycles` bus cycles. */
    void run(Cycles cycles);

    /**
     * Switch run loops. Safe at any cycle boundary (between run()
     * calls): all modes leave identical state behind. Also toggles the
     * controllers' lazy channel scan (on for the fast modes, off for
     * the lockstep specification).
     */
    void setRunMode(McRunMode mode);

    McRunMode runMode() const { return mode_; }

    /** Start a fresh measurement window. */
    void resetMeasurement();

    Cycles now() const { return now_; }
    Cycles windowCycles() const { return now_ - windowStart_; }

    unsigned numControllers() const
    {
        return static_cast<unsigned>(mcs_.size());
    }
    MemoryController &controller(unsigned mc) { return *mcs_[mc]; }
    const MemoryController &controller(unsigned mc) const
    {
        return *mcs_[mc];
    }

    CoreTrafficGenerator &generator(std::size_t i)
    {
        return *generators_[i];
    }

    std::size_t numGenerators() const { return generators_.size(); }

    /** Achieved bandwidth of generator i over the window, GB/s. */
    GBps achievedBandwidth(std::size_t i) const;

    /** Aggregate effective bandwidth fraction over the window. */
    double effectiveBandwidthFraction() const;

    /** Aggregate row-buffer hit rate over the window. */
    double rowBufferHitRate() const;

    /** Bytes served by controller `mc` during the window. */
    std::uint64_t bytesServed(unsigned mc) const;

    /** @return which MC serves `addr` under the configured mapping. */
    unsigned route(Addr addr) const;

    /** @return the MC-local address for a global address. */
    Addr localAddress(Addr addr) const;

  private:
    /** One lockstep cycle at now_; @return true when anything moved. */
    bool stepCycle();
    /** The original per-cycle loop (the equivalence oracle). */
    void runLockstep(Cycles end);
    /** Single-threaded cycle-skipping loop (fused wake min-scan). */
    void runEventDriven(Cycles end);
    /** Dispatch to the independent-shard or epoch-barrier path. */
    void runSharded(Cycles end);
    /** Whole-run independent shards (clean RangePartitioned only). */
    void runIndependentShards(
        Cycles end,
        const std::vector<std::vector<std::size_t>> &shard_gens);
    /** One-cycle-epoch barrier team (LineInterleaved / straddling). */
    void runEpochSharded(Cycles end, unsigned team);
    /**
     * Try to split generators into per-MC shards with no cross-MC
     * interaction: every generator's whole address region must route
     * to one controller. On success `out[mc]` holds that MC's
     * generator indices in ascending order.
     */
    bool independentShards(
        std::vector<std::vector<std::size_t>> &out) const;
    /** Hand a completed request back to its source's generator. */
    void deliver(const Request &req);

    DramConfig perMcCfg_;
    McMapping mapping_;
    McRunMode mode_;
    std::vector<std::unique_ptr<MemoryController>> mcs_;
    std::vector<std::unique_ptr<CoreTrafficGenerator>> generators_;
    std::vector<CoreTrafficGenerator *> bySource_;
    Addr perMcSpan_;
    Cycles now_ = 0;
    Cycles windowStart_ = 0;
    /**
     * While the epoch loop's parallel controller phase runs,
     * completions are buffered per MC instead of delivered inline
     * (two controllers may complete lines of the same source in the
     * same cycle); the serial phase drains the buffers in controller
     * index order — exactly the lockstep delivery order.
     */
    bool deferCompletions_ = false;
    std::vector<std::vector<Request>> deferred_;
};

} // namespace pccs::dram

#endif // PCCS_DRAM_MULTI_MC_HH
