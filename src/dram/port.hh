/**
 * @file
 * The memory-port interface traffic generators issue through: either
 * a single MemoryController or a multi-controller router (multi_mc.hh)
 * sits behind it.
 */

#ifndef PCCS_DRAM_PORT_HH
#define PCCS_DRAM_PORT_HH

#include "common/units.hh"

namespace pccs::dram {

/** Minimal request-issue interface of a memory subsystem. */
class MemoryPort
{
  public:
    virtual ~MemoryPort() = default;

    /**
     * Enqueue a line-sized request.
     * @return false on backpressure (caller retries the same request)
     */
    virtual bool enqueue(unsigned source, Addr addr, bool is_write,
                         Cycles now) = 0;

    /** @return the transfer granularity, bytes. */
    virtual unsigned lineBytes() const = 0;

    /** @return duration of one controller cycle, seconds. */
    virtual double cycleSeconds() const = 0;

    /** @return bytes of addressable space behind this port. */
    virtual Addr addressSpan() const = 0;
};

} // namespace pccs::dram

#endif // PCCS_DRAM_PORT_HH
