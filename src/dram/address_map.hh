/**
 * @file
 * Physical-address to channel/bank/row/column decoding.
 *
 * Layout (low to high bits):
 *   [line offset | channel | column | bank | row]
 * Channel bits sit directly above the line offset so that consecutive
 * cache lines interleave across channels (the channel-interleaving
 * scheme Section 2.1 and Section 5 of the paper describe). The bank
 * index is optionally XOR-hashed with the low row bits (Table 1's
 * "XOR-based address-to-bank mapping") to spread row conflicts.
 */

#ifndef PCCS_DRAM_ADDRESS_MAP_HH
#define PCCS_DRAM_ADDRESS_MAP_HH

#include "dram/config.hh"
#include "dram/request.hh"

namespace pccs::dram {

/** Decodes physical addresses according to a DramConfig geometry. */
class AddressMapper
{
  public:
    /** Build a mapper for the given geometry (validates power-of-two). */
    explicit AddressMapper(const DramConfig &cfg);

    /** Decode a physical address into channel/bank/row/column. */
    DecodedAddr decode(Addr addr) const;

    /**
     * Inverse of decode: reconstruct the line-aligned physical address
     * for a location. decode(encode(l)) == l for in-range locations.
     */
    Addr encode(const DecodedAddr &loc) const;

    /** @return bytes spanned before the row index wraps. */
    Addr addressSpan() const;

  private:
    unsigned lineShift_;
    unsigned channelBits_;
    unsigned columnBits_;
    unsigned bankBits_;
    unsigned rowBits_;
    bool xorHash_;
};

} // namespace pccs::dram

#endif // PCCS_DRAM_ADDRESS_MAP_HH
