/**
 * @file
 * Fixed-capacity request queue with O(1) arrival-order-preserving
 * removal, SoA mirrors of the hot request fields, and incrementally
 * maintained per-bank candidate lists.
 *
 * The memory controller removes requests from the *middle* of a
 * channel queue (the scheduler picks by policy, not position), but
 * every policy tie-breaks by arrival order, which until PR 2 was
 * implicitly encoded in vector position and maintained with an O(n)
 * `erase(begin() + idx)` per CAS. This container keeps requests in a
 * fixed slot arena and threads an intrusive doubly-linked index list
 * through them in arrival order: push_back() appends at the tail,
 * erase() unlinks in O(1), and iteration walks the list — so the
 * sequence a scheduler observes is exactly the sequence the old
 * vector produced, while slot addresses stay stable for the lifetime
 * of a request (QueueEntryView keeps raw pointers across a pick).
 *
 * The fast issue engine (PR 9) adds two layers on top of the arena:
 *
 *  - SoA mirrors: bank, row, is-write, and the global arrival serial
 *    of each slot live in parallel arrays, so candidate classification
 *    touches dense words instead of chasing next_[] through full
 *    Request structs;
 *  - per-bank lists: every slot is threaded onto its bank's
 *    arrival-order FIFO, and slots targeting the bank's open row are
 *    additionally threaded onto that bank's read or write hit list
 *    (reads and writes have different CAS-legality bounds). The lists
 *    change only on the events that change the candidate sets —
 *    enqueue, CAS dequeue, PRE (clearHits), ACT (rebuildHits) — so the
 *    issuable-set evaluation never re-derives them from a queue scan.
 *
 * Invariant: a slot is on bank b's hit list iff it is queued, targets
 * bank b, and its row equals the bank's open row — the same predicate
 * the retained full-scan path evaluates per entry per cycle.
 *
 * The rank-tier engine (PR 10) adds a third, per-source layer so the
 * source-ranked policies (ATLAS/TCM/SMS/PARBS/BLISS) can run their
 * tier selection over masks too:
 *
 *  - per-source arrival FIFOs: every slot is threaded onto its
 *    source's arrival-order list (head == the source's oldest queued
 *    request, the batch anchor of SMS and the marked prefix of PARBS);
 *  - per-(source, bank) occupancy counts backing one occupied-bank
 *    mask per source, and per-(source, bank, direction) hit counts
 *    backing one read-hit and one write-hit bank mask per source.
 *    Intersecting a source's masks with the FastIssueView legality
 *    masks answers "does source s have an issuable hit / non-hit?" in
 *    a few uint64 ops, which is all a rank tier pass needs.
 *
 * All three layers are maintained on the same four events (enqueue,
 * CAS dequeue, PRE, ACT); nothing is derived by scanning the queue.
 */

#ifndef PCCS_DRAM_REQUEST_QUEUE_HH
#define PCCS_DRAM_REQUEST_QUEUE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <vector>

#include "common/logging.hh"
#include "dram/request.hh"

namespace pccs::dram {

/** Source-id bound shared by the queue masks and Scheduler state. */
inline constexpr unsigned kMaxQueueSources = 64;

/** Arrival-ordered request buffer of one channel. */
class RequestQueue
{
  public:
    RequestQueue(std::size_t capacity, unsigned banks)
        : slots_(capacity), next_(capacity, -1), prev_(capacity, -1),
          bankOf_(capacity, 0), rowOf_(capacity, 0),
          writeOf_(capacity, 0), serialOf_(capacity, 0),
          inHit_(capacity, 0), srcOf_(capacity, 0),
          bankNext_(capacity, -1), bankPrev_(capacity, -1),
          hitNext_(capacity, -1), hitPrev_(capacity, -1),
          srcNext_(capacity, -1), srcPrev_(capacity, -1), banks_(banks),
          srcBankCount_(kMaxQueueSources * banks, 0),
          srcHitCount_(kMaxQueueSources * banks * 2, 0),
          numBanks_(banks)
    {
        PCCS_ASSERT(capacity > 0, "request queue needs capacity");
        PCCS_ASSERT(capacity <= 0xFFFF,
                    "per-source counts support <= 65535 slots");
        PCCS_ASSERT(banks > 0 && banks <= 64,
                    "per-bank lists support 1..64 banks");
        for (std::size_t i = 0; i + 1 < capacity; ++i)
            next_[i] = static_cast<int>(i + 1);
        freeHead_ = 0;
    }

    std::size_t size() const { return size_; }
    std::size_t capacity() const { return slots_.size(); }
    bool empty() const { return size_ == 0; }
    bool full() const { return freeHead_ < 0; }

    /**
     * Append a request in arrival order (queue must not be full).
     * @param row_hit the request targets its bank's currently open row
     *        (links it onto the bank's read or write hit list)
     * @return the slot index holding it (stable until erase).
     */
    int push_back(const Request &req, bool row_hit)
    {
        PCCS_ASSERT(!full(), "push_back on a full request queue");
        const int s = freeHead_;
        freeHead_ = next_[s];
        slots_[s] = req;
        next_[s] = -1;
        prev_[s] = tail_;
        if (tail_ >= 0)
            next_[tail_] = s;
        else
            head_ = s;
        tail_ = s;
        ++size_;

        const unsigned b = req.loc.bank;
        bankOf_[s] = static_cast<std::uint16_t>(b);
        rowOf_[s] = req.loc.row;
        writeOf_[s] = req.isWrite ? 1 : 0;
        serialOf_[s] = req.id;
        BankLists &bl = banks_[b];
        bankLink(bl, s);
        occupiedMask_ |= std::uint64_t{1} << b;

        PCCS_ASSERT(req.source < kMaxQueueSources,
                    "source id %u out of range", req.source);
        const unsigned src = req.source;
        srcOf_[s] = static_cast<std::uint8_t>(src);
        srcLink(sources_[src], s);
        activeSourceMask_ |= std::uint64_t{1} << src;
        if (srcBankCount_[src * numBanks_ + b]++ == 0)
            srcOccupied_[src] |= std::uint64_t{1} << b;

        if (row_hit)
            hitLink(bl, s);
        else
            inHit_[s] = 0;
        return s;
    }

    /** Remove slot `s`; the relative order of the rest is unchanged. */
    void erase(int s)
    {
        const int p = prev_[s];
        const int n = next_[s];
        if (p >= 0)
            next_[p] = n;
        else
            head_ = n;
        if (n >= 0)
            prev_[n] = p;
        else
            tail_ = p;
        next_[s] = freeHead_;
        prev_[s] = -1;
        freeHead_ = s;
        --size_;

        const unsigned b = bankOf_[s];
        BankLists &bl = banks_[b];
        bankUnlink(bl, s);
        if (bl.count == 0)
            occupiedMask_ &= ~(std::uint64_t{1} << b);
        if (inHit_[s])
            hitUnlink(bl, s);

        const unsigned src = srcOf_[s];
        SourceList &sl = sources_[src];
        srcUnlink(sl, s);
        if (sl.count == 0)
            activeSourceMask_ &= ~(std::uint64_t{1} << src);
        if (--srcBankCount_[src * numBanks_ + b] == 0)
            srcOccupied_[src] &= ~(std::uint64_t{1} << b);
    }

    /**
     * Drop bank `b`'s hit lists (its open row is being closed by a PRE
     * or refresh drain); the bank FIFO is untouched.
     */
    void clearHits(unsigned b)
    {
        BankLists &bl = banks_[b];
        for (int s = bl.hitHead[0]; s >= 0; s = hitNext_[s]) {
            inHit_[s] = 0;
            srcHitDrop(s);
        }
        for (int s = bl.hitHead[1]; s >= 0; s = hitNext_[s]) {
            inHit_[s] = 0;
            srcHitDrop(s);
        }
        bl.hitHead[0] = bl.hitHead[1] = -1;
        bl.hitTail[0] = bl.hitTail[1] = -1;
        bl.hitCount[0] = bl.hitCount[1] = 0;
        hitMask_ &= ~(std::uint64_t{1} << b);
    }

    /**
     * Rebuild bank `b`'s hit lists after an ACT opened `row`: every
     * queued request of the bank targeting `row` becomes a hit, in
     * arrival order (a walk of the bank FIFO, not the whole queue).
     */
    void rebuildHits(unsigned b, std::uint32_t row)
    {
        clearHits(b);
        BankLists &bl = banks_[b];
        for (int s = bl.head; s >= 0; s = bankNext_[s]) {
            if (rowOf_[s] == row)
                hitLink(bl, s);
        }
    }

    Request &slot(int s) { return slots_[s]; }
    const Request &slot(int s) const { return slots_[s]; }

    /** @return slot index of the oldest request, or -1 when empty. */
    int head() const { return head_; }

    /** @return slot index following `s` in arrival order, or -1. */
    int next(int s) const { return next_[s]; }

    /** SoA mirrors (valid while the slot is queued). */
    unsigned bank(int s) const { return bankOf_[s]; }
    std::uint32_t row(int s) const { return rowOf_[s]; }
    bool isWrite(int s) const { return writeOf_[s] != 0; }
    /** Global arrival serial (== Request::id, monotone with age). */
    std::uint64_t serial(int s) const { return serialOf_[s]; }
    /** True when the slot is on its bank's hit list (open-row match). */
    bool isHit(int s) const { return inHit_[s] != 0; }

    /** Banks with at least one queued request, one bit per bank. */
    std::uint64_t occupiedMask() const { return occupiedMask_; }
    /** Banks with at least one pending open-row hit. */
    std::uint64_t hitMask() const { return hitMask_; }

    /** Oldest queued request of bank `b` (-1 when none). */
    int bankHead(unsigned b) const { return banks_[b].head; }
    /** Queued requests of bank `b`. */
    unsigned bankCount(unsigned b) const { return banks_[b].count; }
    /** Next slot of the same bank in arrival order, or -1. */
    int bankNext(int s) const { return bankNext_[s]; }

    /** Source id of the request in slot `s`. */
    unsigned source(int s) const { return srcOf_[s]; }

    /** Sources with at least one queued request, one bit per source. */
    std::uint64_t activeSourceMask() const { return activeSourceMask_; }

    /** Oldest queued request of source `src` (-1 when none). */
    int sourceHead(unsigned src) const { return sources_[src].head; }
    /** Queued requests of source `src`. */
    unsigned sourceCount(unsigned src) const
    {
        return sources_[src].count;
    }
    /** Next slot of the same source in arrival order, or -1. */
    int sourceNext(int s) const { return srcNext_[s]; }

    /** Banks where source `src` has at least one queued request. */
    std::uint64_t sourceOccupiedMask(unsigned src) const
    {
        return srcOccupied_[src];
    }
    /** Banks where source `src` has a pending open-row read / write hit. */
    std::uint64_t sourceHitReadMask(unsigned src) const
    {
        return srcHitRead_[src];
    }
    std::uint64_t sourceHitWriteMask(unsigned src) const
    {
        return srcHitWrite_[src];
    }

    /** Oldest pending read / write hit of bank `b` (-1 when none). */
    int hitHeadRead(unsigned b) const { return banks_[b].hitHead[0]; }
    int hitHeadWrite(unsigned b) const { return banks_[b].hitHead[1]; }
    /** Pending read / write / total hits of bank `b`. */
    unsigned hitCountRead(unsigned b) const { return banks_[b].hitCount[0]; }
    unsigned hitCountWrite(unsigned b) const { return banks_[b].hitCount[1]; }
    unsigned hitCount(unsigned b) const
    {
        return banks_[b].hitCount[0] + banks_[b].hitCount[1];
    }

    /** Arrival-order iteration (enables range-for). */
    class const_iterator
    {
      public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = Request;
        using difference_type = std::ptrdiff_t;
        using pointer = const Request *;
        using reference = const Request &;

        const_iterator(const RequestQueue *q, int s) : q_(q), s_(s) {}
        const Request &operator*() const { return q_->slots_[s_]; }
        const Request *operator->() const { return &q_->slots_[s_]; }
        const_iterator &operator++()
        {
            s_ = q_->next_[s_];
            return *this;
        }
        bool operator==(const const_iterator &o) const
        {
            return s_ == o.s_;
        }
        bool operator!=(const const_iterator &o) const
        {
            return s_ != o.s_;
        }

      private:
        const RequestQueue *q_;
        int s_;
    };

    const_iterator begin() const { return {this, head_}; }
    const_iterator end() const { return {this, -1}; }

  private:
    /** Intrusive list anchors of one bank ([0] = reads, [1] = writes). */
    struct BankLists
    {
        int head = -1;
        int tail = -1;
        unsigned count = 0;
        int hitHead[2] = {-1, -1};
        int hitTail[2] = {-1, -1};
        unsigned hitCount[2] = {0, 0};
    };

    /** Intrusive arrival-order list anchors of one source. */
    struct SourceList
    {
        int head = -1;
        int tail = -1;
        unsigned count = 0;
    };

    void bankLink(BankLists &bl, int s)
    {
        bankNext_[s] = -1;
        bankPrev_[s] = bl.tail;
        if (bl.tail >= 0)
            bankNext_[bl.tail] = s;
        else
            bl.head = s;
        bl.tail = s;
        ++bl.count;
    }

    void bankUnlink(BankLists &bl, int s)
    {
        const int p = bankPrev_[s];
        const int n = bankNext_[s];
        if (p >= 0)
            bankNext_[p] = n;
        else
            bl.head = n;
        if (n >= 0)
            bankPrev_[n] = p;
        else
            bl.tail = p;
        --bl.count;
    }

    void hitLink(BankLists &bl, int s)
    {
        const unsigned rw = writeOf_[s];
        hitNext_[s] = -1;
        hitPrev_[s] = bl.hitTail[rw];
        if (bl.hitTail[rw] >= 0)
            hitNext_[bl.hitTail[rw]] = s;
        else
            bl.hitHead[rw] = s;
        bl.hitTail[rw] = s;
        ++bl.hitCount[rw];
        inHit_[s] = 1;
        hitMask_ |= std::uint64_t{1} << bankOf_[s];
        srcHitAdd(s);
    }

    void hitUnlink(BankLists &bl, int s)
    {
        const unsigned rw = writeOf_[s];
        const int p = hitPrev_[s];
        const int n = hitNext_[s];
        if (p >= 0)
            hitNext_[p] = n;
        else
            bl.hitHead[rw] = n;
        if (n >= 0)
            hitPrev_[n] = p;
        else
            bl.hitTail[rw] = p;
        --bl.hitCount[rw];
        inHit_[s] = 0;
        if (bl.hitCount[0] + bl.hitCount[1] == 0)
            hitMask_ &= ~(std::uint64_t{1} << bankOf_[s]);
        srcHitDrop(s);
    }

    void srcLink(SourceList &sl, int s)
    {
        srcNext_[s] = -1;
        srcPrev_[s] = sl.tail;
        if (sl.tail >= 0)
            srcNext_[sl.tail] = s;
        else
            sl.head = s;
        sl.tail = s;
        ++sl.count;
    }

    void srcUnlink(SourceList &sl, int s)
    {
        const int p = srcPrev_[s];
        const int n = srcNext_[s];
        if (p >= 0)
            srcNext_[p] = n;
        else
            sl.head = n;
        if (n >= 0)
            srcPrev_[n] = p;
        else
            sl.tail = p;
        --sl.count;
    }

    /** Slot `s` became a hit: count it for its (source, bank, rw). */
    void srcHitAdd(int s)
    {
        const unsigned src = srcOf_[s];
        const unsigned b = bankOf_[s];
        const unsigned rw = writeOf_[s];
        if (srcHitCount_[(src * numBanks_ + b) * 2 + rw]++ == 0) {
            (rw ? srcHitWrite_ : srcHitRead_)[src] |=
                std::uint64_t{1} << b;
        }
    }

    /** Slot `s` stopped being a hit (CAS, PRE, or row change). */
    void srcHitDrop(int s)
    {
        const unsigned src = srcOf_[s];
        const unsigned b = bankOf_[s];
        const unsigned rw = writeOf_[s];
        if (--srcHitCount_[(src * numBanks_ + b) * 2 + rw] == 0) {
            (rw ? srcHitWrite_ : srcHitRead_)[src] &=
                ~(std::uint64_t{1} << b);
        }
    }

    std::vector<Request> slots_;
    /** Arrival-order successor per slot; doubles as free-list link. */
    std::vector<int> next_;
    std::vector<int> prev_;
    /** SoA mirrors of the hot request fields, indexed by slot. */
    std::vector<std::uint16_t> bankOf_;
    std::vector<std::uint32_t> rowOf_;
    std::vector<std::uint8_t> writeOf_;
    std::vector<std::uint64_t> serialOf_;
    std::vector<std::uint8_t> inHit_;
    std::vector<std::uint8_t> srcOf_;
    /** Per-bank arrival-order FIFO links, indexed by slot. */
    std::vector<int> bankNext_;
    std::vector<int> bankPrev_;
    /** Hit-list links (a slot is on at most one hit list). */
    std::vector<int> hitNext_;
    std::vector<int> hitPrev_;
    /** Per-source arrival-order FIFO links, indexed by slot. */
    std::vector<int> srcNext_;
    std::vector<int> srcPrev_;
    std::vector<BankLists> banks_;
    std::array<SourceList, kMaxQueueSources> sources_{};
    /** Queued requests per (source, bank), row-major by source. */
    std::vector<std::uint16_t> srcBankCount_;
    /** Pending hits per (source, bank, rw), rw fastest-varying. */
    std::vector<std::uint16_t> srcHitCount_;
    /** Per-source bank masks derived from the counts above. */
    std::array<std::uint64_t, kMaxQueueSources> srcOccupied_{};
    std::array<std::uint64_t, kMaxQueueSources> srcHitRead_{};
    std::array<std::uint64_t, kMaxQueueSources> srcHitWrite_{};
    unsigned numBanks_ = 0;
    std::uint64_t occupiedMask_ = 0;
    std::uint64_t hitMask_ = 0;
    std::uint64_t activeSourceMask_ = 0;
    int head_ = -1;
    int tail_ = -1;
    int freeHead_ = -1;
    std::size_t size_ = 0;
};

} // namespace pccs::dram

#endif // PCCS_DRAM_REQUEST_QUEUE_HH
