/**
 * @file
 * Fixed-capacity request queue with O(1) arrival-order-preserving
 * removal.
 *
 * The memory controller removes requests from the *middle* of a
 * channel queue (the scheduler picks by policy, not position), but
 * every policy tie-breaks by arrival order, which until PR 2 was
 * implicitly encoded in vector position and maintained with an O(n)
 * `erase(begin() + idx)` per CAS. This container keeps requests in a
 * fixed slot arena and threads an intrusive doubly-linked index list
 * through them in arrival order: push_back() appends at the tail,
 * erase() unlinks in O(1), and iteration walks the list — so the
 * sequence a scheduler observes is exactly the sequence the old
 * vector produced, while slot addresses stay stable for the lifetime
 * of a request (QueueEntryView keeps raw pointers across a pick).
 */

#ifndef PCCS_DRAM_REQUEST_QUEUE_HH
#define PCCS_DRAM_REQUEST_QUEUE_HH

#include <cstddef>
#include <iterator>
#include <vector>

#include "common/logging.hh"
#include "dram/request.hh"

namespace pccs::dram {

/** Arrival-ordered request buffer of one channel. */
class RequestQueue
{
  public:
    explicit RequestQueue(std::size_t capacity)
        : slots_(capacity), next_(capacity, -1), prev_(capacity, -1)
    {
        PCCS_ASSERT(capacity > 0, "request queue needs capacity");
        for (std::size_t i = 0; i + 1 < capacity; ++i)
            next_[i] = static_cast<int>(i + 1);
        freeHead_ = 0;
    }

    std::size_t size() const { return size_; }
    std::size_t capacity() const { return slots_.size(); }
    bool empty() const { return size_ == 0; }
    bool full() const { return freeHead_ < 0; }

    /**
     * Append a request in arrival order (queue must not be full).
     * @return the slot index holding it (stable until erase).
     */
    int push_back(const Request &req)
    {
        PCCS_ASSERT(!full(), "push_back on a full request queue");
        const int s = freeHead_;
        freeHead_ = next_[s];
        slots_[s] = req;
        next_[s] = -1;
        prev_[s] = tail_;
        if (tail_ >= 0)
            next_[tail_] = s;
        else
            head_ = s;
        tail_ = s;
        ++size_;
        return s;
    }

    /** Remove slot `s`; the relative order of the rest is unchanged. */
    void erase(int s)
    {
        const int p = prev_[s];
        const int n = next_[s];
        if (p >= 0)
            next_[p] = n;
        else
            head_ = n;
        if (n >= 0)
            prev_[n] = p;
        else
            tail_ = p;
        next_[s] = freeHead_;
        prev_[s] = -1;
        freeHead_ = s;
        --size_;
    }

    Request &slot(int s) { return slots_[s]; }
    const Request &slot(int s) const { return slots_[s]; }

    /** @return slot index of the oldest request, or -1 when empty. */
    int head() const { return head_; }

    /** @return slot index following `s` in arrival order, or -1. */
    int next(int s) const { return next_[s]; }

    /** Arrival-order iteration (enables range-for). */
    class const_iterator
    {
      public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = Request;
        using difference_type = std::ptrdiff_t;
        using pointer = const Request *;
        using reference = const Request &;

        const_iterator(const RequestQueue *q, int s) : q_(q), s_(s) {}
        const Request &operator*() const { return q_->slots_[s_]; }
        const Request *operator->() const { return &q_->slots_[s_]; }
        const_iterator &operator++()
        {
            s_ = q_->next_[s_];
            return *this;
        }
        bool operator==(const const_iterator &o) const
        {
            return s_ == o.s_;
        }
        bool operator!=(const const_iterator &o) const
        {
            return s_ != o.s_;
        }

      private:
        const RequestQueue *q_;
        int s_;
    };

    const_iterator begin() const { return {this, head_}; }
    const_iterator end() const { return {this, -1}; }

  private:
    std::vector<Request> slots_;
    /** Arrival-order successor per slot; doubles as free-list link. */
    std::vector<int> next_;
    std::vector<int> prev_;
    int head_ = -1;
    int tail_ = -1;
    int freeHead_ = -1;
    std::size_t size_ = 0;
};

} // namespace pccs::dram

#endif // PCCS_DRAM_REQUEST_QUEUE_HH
