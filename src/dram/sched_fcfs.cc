#include "sched_fcfs.hh"

#include <array>
#include <utility>

// Event-driven audit (FCFS and FR-FCFS): pick() is a pure function of
// (entries, now) with no mutable state and no RNG, and tick() is the
// default no-op, so skipping pick() calls on cycles where no entry is
// issuable cannot change any future decision. Note FCFS's issue window
// can return -1 while *younger* entries are issuable; the event core
// handles this by falling back to +1-cycle stepping whenever a wake
// cycle yields no command (it never re-skips past a computed
// issuability edge).
//
// Fast-pick audit: both policies are fast-pick eligible with no
// fallback states. FCFS's window holds the `window` smallest-arrival
// entries with earlier queue positions winning arrival ties — since
// the queue walk is id order and arrival is non-decreasing in id,
// that is exactly the first `window` slots of the arrival list, and
// the winner is the first issuable among them. FR-FCFS's comparator
// (row hit first, then arrival with first-in-walk-order tie-break) is
// precisely the shared oldest-hit-else-oldest helper over the bank
// masks (min arrival serial == min id == first in walk order).
namespace pccs::dram {

int
FcfsScheduler::pick(unsigned channel, std::span<const QueueEntryView> entries,
                    Cycles now)
{
    (void)channel;
    (void)now;
    // Chronological service with no locality awareness: only the few
    // oldest requests are eligible (an in-order front end with a
    // small issue window), and row hits are never preferred over
    // older misses. Both properties are what destroy FCFS's
    // row-buffer hit rate and effective bandwidth under co-location
    // (Table 3).
    std::array<int, window> oldest;
    oldest.fill(-1);
    auto arrival = [&](int idx) { return entries[idx].req->arrival; };
    for (std::size_t i = 0; i < entries.size(); ++i) {
        int cand = static_cast<int>(i);
        for (int &slot : oldest) {
            if (slot < 0) {
                slot = cand;
                break;
            }
            if (arrival(cand) < arrival(slot))
                std::swap(slot, cand);
        }
    }
    int best = -1;
    for (int idx : oldest) {
        if (idx < 0)
            continue;
        if (entries[idx].issuable &&
            (best < 0 || arrival(idx) < arrival(best))) {
            best = idx;
        }
    }
    return best;
}

int
FcfsScheduler::fastPick(const FastIssueView &view, unsigned channel,
                        Cycles now)
{
    (void)channel;
    (void)now;
    // The first issuable slot among the `window` oldest (the arrival
    // list is walked in id order == age order).
    int n = 0;
    for (int s = view.queue->head(); s >= 0 && n < window;
         s = view.queue->next(s), ++n) {
        if (view.slotIssuable(s))
            return s;
    }
    return -1;
}

int
FrFcfsScheduler::pick(unsigned channel,
                      std::span<const QueueEntryView> entries, Cycles now)
{
    (void)channel;
    (void)now;
    int best = -1;
    bool best_hit = false;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const auto &e = entries[i];
        if (!e.issuable)
            continue;
        const bool better =
            best < 0 ||
            (e.rowHit && !best_hit) ||
            (e.rowHit == best_hit &&
             e.req->arrival < entries[best].req->arrival);
        if (better) {
            best = static_cast<int>(i);
            best_hit = e.rowHit;
        }
    }
    return best;
}

int
FrFcfsScheduler::fastPick(const FastIssueView &view, unsigned channel,
                          Cycles now)
{
    (void)channel;
    (void)now;
    return fastPickOldestHitElseOldest(view);
}

void
registerFcfsPolicies()
{
    registerSchedulerPolicy({
        .name = "FCFS",
        .aliases = {},
        .factory =
            [](const SchedulerParams &) {
                return std::make_unique<FcfsScheduler>();
            },
        .pickIsPure = true,
        .preservesRowHits = false,
        .needsTickEvents = false,
        .fastPickEligible = true,
        .fastPickNote = {},
    });
    registerSchedulerPolicy({
        .name = "FR-FCFS",
        .aliases = {"frfcfs"},
        .factory =
            [](const SchedulerParams &) {
                return std::make_unique<FrFcfsScheduler>();
            },
        .pickIsPure = true,
        .preservesRowHits = true,
        .needsTickEvents = false,
        .fastPickEligible = true,
        .fastPickNote = {},
    });
}

} // namespace pccs::dram
