#include "run_mode.hh"

#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace pccs::dram {

namespace {

DramRunMode
envDefault()
{
    const char *env = std::getenv("PCCS_DRAM_REFERENCE");
    if (env && *env && std::strcmp(env, "0") != 0)
        return DramRunMode::Reference;
    return DramRunMode::EventDriven;
}

DramRunMode &
defaultMode()
{
    static DramRunMode mode = envDefault();
    return mode;
}

unsigned
envShards()
{
    const char *env = std::getenv("PCCS_MC_SHARDS");
    if (!env || !*env)
        return 0;
    return static_cast<unsigned>(std::strtoul(env, nullptr, 10));
}

McRunMode
envMcDefault()
{
    // PCCS_DRAM_REFERENCE selects the reference oracle everywhere,
    // including the multi-MC loop; PCCS_MC_SHARDS opts into the
    // parallel path. Reference wins when both are set.
    const char *ref = std::getenv("PCCS_DRAM_REFERENCE");
    if (ref && *ref && std::strcmp(ref, "0") != 0)
        return McRunMode::Lockstep;
    if (std::getenv("PCCS_MC_SHARDS"))
        return McRunMode::Sharded;
    return McRunMode::EventDriven;
}

McRunMode &
defaultMcMode()
{
    static McRunMode mode = envMcDefault();
    return mode;
}

bool
envFastPath()
{
    const char *env = std::getenv("PCCS_DRAM_FASTPATH");
    if (env && *env && std::strcmp(env, "0") == 0)
        return false;
    return true;
}

bool &
fastPathFlag()
{
    static bool on = envFastPath();
    return on;
}

} // namespace

const char *
dramRunModeName(DramRunMode mode)
{
    switch (mode) {
      case DramRunMode::EventDriven:
        return "event-driven";
      case DramRunMode::Reference:
        return "reference";
    }
    panic("unknown DramRunMode %d", static_cast<int>(mode));
}

DramRunMode
defaultDramRunMode()
{
    return defaultMode();
}

void
setDefaultDramRunMode(DramRunMode mode)
{
    defaultMode() = mode;
}

const char *
mcRunModeName(McRunMode mode)
{
    switch (mode) {
      case McRunMode::EventDriven:
        return "event-driven";
      case McRunMode::Sharded:
        return "sharded";
      case McRunMode::Lockstep:
        return "lockstep";
    }
    panic("unknown McRunMode %d", static_cast<int>(mode));
}

McRunMode
defaultMcRunMode()
{
    return defaultMcMode();
}

void
setDefaultMcRunMode(McRunMode mode)
{
    defaultMcMode() = mode;
}

unsigned
mcShardWorkers()
{
    static unsigned shards = envShards();
    return shards;
}

bool
dramFastPathEnabled()
{
    return fastPathFlag();
}

void
setDramFastPathEnabled(bool on)
{
    fastPathFlag() = on;
}

} // namespace pccs::dram
