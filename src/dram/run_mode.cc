#include "run_mode.hh"

#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace pccs::dram {

namespace {

DramRunMode
envDefault()
{
    const char *env = std::getenv("PCCS_DRAM_REFERENCE");
    if (env && *env && std::strcmp(env, "0") != 0)
        return DramRunMode::Reference;
    return DramRunMode::EventDriven;
}

DramRunMode &
defaultMode()
{
    static DramRunMode mode = envDefault();
    return mode;
}

} // namespace

const char *
dramRunModeName(DramRunMode mode)
{
    switch (mode) {
      case DramRunMode::EventDriven:
        return "event-driven";
      case DramRunMode::Reference:
        return "reference";
    }
    panic("unknown DramRunMode %d", static_cast<int>(mode));
}

DramRunMode
defaultDramRunMode()
{
    return defaultMode();
}

void
setDefaultDramRunMode(DramRunMode mode)
{
    defaultMode() = mode;
}

} // namespace pccs::dram
