#include "sched_tcm.hh"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/logging.hh"

// Event-driven audit: pick() reads cluster/rank tables and mutates
// nothing, so skipped no-issuable cycles are pure no-ops. Both
// time-triggered updates (the recluster quantum and the rank shuffle)
// live in tick() and are exported through nextTickEvent(), so the
// event core wakes on exactly the reference cycles and the
// `nextQuantum_/nextShuffle_ = now + interval` rearm chains advance
// identically in both modes.
//
// Fast-pick audit: the comparator is two source tiers with the
// FR-FCFS step inside each. The latency cluster is a set (no ranks
// inside it), expressed as one bitmask rebuilt on recluster; the
// bandwidth cluster is ranked by a permutation, so its winner is the
// unique minimum-rank issuable source. No fallback states.
namespace pccs::dram {

TcmScheduler::TcmScheduler(const SchedulerParams &params)
    : params_(params),
      nextQuantum_(params.quantum),
      nextShuffle_(params.tcmShuffleInterval)
{
    // Until the first quantum completes, treat everyone as
    // latency-sensitive (no information yet).
    latencyCluster_.fill(true);
    latencyMask_ = ~std::uint64_t{0};
    for (unsigned s = 0; s < maxSources; ++s)
        rank_[s] = s;
}

void
TcmScheduler::tick(Cycles now)
{
    if (now >= nextShuffle_) {
        shuffle();
        nextShuffle_ = now + params_.tcmShuffleInterval;
    }
    if (now >= nextQuantum_) {
        for (unsigned s = 0; s < maxSources; ++s) {
            intensity_[s] = 0.5 * intensity_[s] + 0.5 * quantumService_[s];
            quantumService_[s] = 0.0;
        }
        recluster();
        nextQuantum_ = now + params_.quantum;
    }
}

void
TcmScheduler::recluster()
{
    // Sort sources by ascending intensity; admit sources into the
    // latency-sensitive cluster until the cluster's cumulative
    // bandwidth usage exceeds the configured fraction of the total.
    std::vector<unsigned> order(maxSources);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
        return intensity_[a] < intensity_[b];
    });

    double total = 0.0;
    for (unsigned s = 0; s < maxSources; ++s)
        total += intensity_[s];
    const double budget = params_.tcmClusterFraction * total;

    latencyCluster_.fill(false);
    double used = 0.0;
    for (unsigned s : order) {
        if (intensity_[s] <= 0.0) {
            latencyCluster_[s] = true; // idle sources are harmless
            continue;
        }
        if (used + intensity_[s] <= budget) {
            latencyCluster_[s] = true;
            used += intensity_[s];
        } else {
            break; // order is ascending; nothing further fits
        }
    }

    latencyMask_ = 0;
    for (unsigned s = 0; s < maxSources; ++s) {
        if (latencyCluster_[s])
            latencyMask_ |= std::uint64_t{1} << s;
    }
}

void
TcmScheduler::shuffle()
{
    // Rotate ranks of the bandwidth cluster ("rank shuffle" in the
    // paper's summary) so heavy sources take turns at high priority.
    ++shuffleOffset_;
    for (unsigned s = 0; s < maxSources; ++s)
        rank_[s] = (s + shuffleOffset_) % maxSources;
}

void
TcmScheduler::onService(const Request &req, Cycles now, unsigned bytes)
{
    (void)now;
    (void)bytes;
    PCCS_ASSERT(req.source < maxSources, "source id %u out of range",
                req.source);
    quantumService_[req.source] += 1.0;
}

int
TcmScheduler::pick(unsigned channel,
                   std::span<const QueueEntryView> entries, Cycles now)
{
    (void)channel;
    (void)now;
    auto better = [&](const QueueEntryView &a,
                      const QueueEntryView &b) -> bool {
        const bool a_lat = latencyCluster_[a.req->source];
        const bool b_lat = latencyCluster_[b.req->source];
        if (a_lat != b_lat)
            return a_lat;
        if (!a_lat) { // both bandwidth-sensitive: shuffled rank decides
            const unsigned ra = rank_[a.req->source];
            const unsigned rb = rank_[b.req->source];
            if (ra != rb)
                return ra < rb;
        }
        if (a.rowHit != b.rowHit)
            return a.rowHit;
        return a.req->arrival < b.req->arrival;
    };

    int best = -1;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (!entries[i].issuable)
            continue;
        if (best < 0 || better(entries[i], entries[best]))
            best = static_cast<int>(i);
    }
    return best;
}

int
TcmScheduler::fastPick(const FastIssueView &view, unsigned channel,
                       Cycles now)
{
    (void)channel;
    (void)now;
    const std::uint64_t issuable = view.issuableSourceMask();
    if (!issuable)
        return -1;
    // Tier 1: the latency-sensitive cluster. Ranks are not consulted
    // inside it — the comparator falls straight through to row hit
    // then age, which is the shared helper over the cluster members.
    const std::uint64_t lat = issuable & latencyMask_;
    if (lat) {
        if (lat == issuable)
            return fastPickOldestHitElseOldest(view);
        return fastPickOldestHitElseOldestOfSources(view, lat);
    }
    // Tier 2: the bandwidth cluster under the shuffled ranking. The
    // rank table is a permutation, so the minimum-rank issuable
    // source is unique and the decision collapses to a single-source
    // oldest-hit-else-oldest.
    unsigned best_src = 0;
    unsigned best_rank = ~0u;
    for (std::uint64_t m = issuable; m; m &= m - 1) {
        const unsigned src =
            static_cast<unsigned>(std::countr_zero(m));
        if (rank_[src] < best_rank) {
            best_rank = rank_[src];
            best_src = src;
        }
    }
    return fastPickOldestHitElseOldestOfSources(
        view, std::uint64_t{1} << best_src);
}

void
registerTcmPolicy()
{
    registerSchedulerPolicy({
        .name = "TCM",
        .aliases = {},
        .factory =
            [](const SchedulerParams &p) {
                return std::make_unique<TcmScheduler>(p);
            },
        .pickIsPure = true,
        .preservesRowHits = true,
        .needsTickEvents = true,
        .fastPickEligible = true,
        .fastPickNote = {},
    });
}

} // namespace pccs::dram
