#include "sched_tcm.hh"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/logging.hh"

// Event-driven audit: pick() reads cluster/rank tables and mutates
// nothing, so skipped no-issuable cycles are pure no-ops. Both
// time-triggered updates (the recluster quantum and the rank shuffle)
// live in tick() and are exported through nextTickEvent(), so the
// event core wakes on exactly the reference cycles and the
// `nextQuantum_/nextShuffle_ = now + interval` rearm chains advance
// identically in both modes.
namespace pccs::dram {

TcmScheduler::TcmScheduler(const SchedulerParams &params)
    : params_(params),
      nextQuantum_(params.quantum),
      nextShuffle_(params.tcmShuffleInterval)
{
    // Until the first quantum completes, treat everyone as
    // latency-sensitive (no information yet).
    latencyCluster_.fill(true);
    for (unsigned s = 0; s < maxSources; ++s)
        rank_[s] = s;
}

void
TcmScheduler::tick(Cycles now)
{
    if (now >= nextShuffle_) {
        shuffle();
        nextShuffle_ = now + params_.tcmShuffleInterval;
    }
    if (now >= nextQuantum_) {
        for (unsigned s = 0; s < maxSources; ++s) {
            intensity_[s] = 0.5 * intensity_[s] + 0.5 * quantumService_[s];
            quantumService_[s] = 0.0;
        }
        recluster();
        nextQuantum_ = now + params_.quantum;
    }
}

void
TcmScheduler::recluster()
{
    // Sort sources by ascending intensity; admit sources into the
    // latency-sensitive cluster until the cluster's cumulative
    // bandwidth usage exceeds the configured fraction of the total.
    std::vector<unsigned> order(maxSources);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
        return intensity_[a] < intensity_[b];
    });

    double total = 0.0;
    for (unsigned s = 0; s < maxSources; ++s)
        total += intensity_[s];
    const double budget = params_.tcmClusterFraction * total;

    latencyCluster_.fill(false);
    double used = 0.0;
    for (unsigned s : order) {
        if (intensity_[s] <= 0.0) {
            latencyCluster_[s] = true; // idle sources are harmless
            continue;
        }
        if (used + intensity_[s] <= budget) {
            latencyCluster_[s] = true;
            used += intensity_[s];
        } else {
            break; // order is ascending; nothing further fits
        }
    }
}

void
TcmScheduler::shuffle()
{
    // Rotate ranks of the bandwidth cluster ("rank shuffle" in the
    // paper's summary) so heavy sources take turns at high priority.
    ++shuffleOffset_;
    for (unsigned s = 0; s < maxSources; ++s)
        rank_[s] = (s + shuffleOffset_) % maxSources;
}

void
TcmScheduler::onService(const Request &req, Cycles now, unsigned bytes)
{
    (void)now;
    (void)bytes;
    PCCS_ASSERT(req.source < maxSources, "source id %u out of range",
                req.source);
    quantumService_[req.source] += 1.0;
}

int
TcmScheduler::pick(unsigned channel,
                   std::span<const QueueEntryView> entries, Cycles now)
{
    (void)channel;
    (void)now;
    auto better = [&](const QueueEntryView &a,
                      const QueueEntryView &b) -> bool {
        const bool a_lat = latencyCluster_[a.req->source];
        const bool b_lat = latencyCluster_[b.req->source];
        if (a_lat != b_lat)
            return a_lat;
        if (!a_lat) { // both bandwidth-sensitive: shuffled rank decides
            const unsigned ra = rank_[a.req->source];
            const unsigned rb = rank_[b.req->source];
            if (ra != rb)
                return ra < rb;
        }
        if (a.rowHit != b.rowHit)
            return a.rowHit;
        return a.req->arrival < b.req->arrival;
    };

    int best = -1;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (!entries[i].issuable)
            continue;
        if (best < 0 || better(entries[i], entries[best]))
            best = static_cast<int>(i);
    }
    return best;
}

void
registerTcmPolicy()
{
    registerSchedulerPolicy({
        .name = "TCM",
        .aliases = {},
        .factory =
            [](const SchedulerParams &p) {
                return std::make_unique<TcmScheduler>(p);
            },
        .pickIsPure = true,
        .preservesRowHits = true,
        .needsTickEvents = true,
        // Cluster/rank prioritization is per-source, not per-bank;
        // TCM always takes the materialized evaluation.
        .fastPickEligible = false,
    });
}

} // namespace pccs::dram
