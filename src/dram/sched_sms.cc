#include "sched_sms.hh"

#include <algorithm>

#include "common/logging.hh"

// Event-driven audit: SMS is the one policy whose pick() mutates state
// (batch bookkeeping) and consumes RNG (batch selection), so the
// skipping contract needs care. A new batch is selected — and an RNG
// draw consumed — only when the previous batch is finished or no
// longer visible in the queue, and both conditions can change solely
// on queue-content changes (a CAS removing a request, or an enqueue
// into an empty-source queue). The event core always processes the
// cycle *after* any issue/enqueue/completion, which is precisely when
// the reference loop would reselect; on every later skipped cycle the
// in-flight-batch path runs instead, which touches neither state nor
// RNG when nothing is issuable. Hence the RNG stream and batch state
// stay cycle-for-cycle identical across the two cores.
//
// Fast-pick audit: fastPick() is a line-for-line restatement of
// pick() over the per-source FIFOs — the batch anchor is the FIFO
// head (pick()'s strict-less oldest scan keeps the first of an
// arrival tie, which in walk order is the head), the batch size is
// the capped count of same-row entries along the FIFO, and serving is
// the first issuable row match in FIFO order. It mutates the same
// ChannelState and draws the same single RNG chance per reselection,
// so the controller calls it on every evaluated cycle (impure-policy
// contract) and the RNG stream stays aligned with the reference. No
// fallback states.
namespace pccs::dram {

SmsScheduler::SmsScheduler(const SchedulerParams &params)
    : params_(params), rng_(params.seed)
{
}

SmsScheduler::ChannelState &
SmsScheduler::channelState(unsigned channel)
{
    if (channel >= channels_.size())
        channels_.resize(channel + 1);
    return channels_[channel];
}

int
SmsScheduler::pick(unsigned channel,
                   std::span<const QueueEntryView> entries, Cycles now)
{
    (void)now;
    ChannelState &st = channelState(channel);

    // Recompute, per source, the head batch visible in this snapshot:
    // the oldest request of the source plus younger requests to the
    // same row, capped at smsBatchCap.
    struct SourceBatch
    {
        int oldestIdx = -1;
        Cycles oldestArrival = 0;
        std::uint32_t row = 0;
        unsigned size = 0;
    };
    std::array<SourceBatch, maxSources> batches;

    for (std::size_t i = 0; i < entries.size(); ++i) {
        const Request &r = *entries[i].req;
        PCCS_ASSERT(r.source < maxSources, "source id %u out of range",
                    r.source);
        SourceBatch &b = batches[r.source];
        if (b.oldestIdx < 0 || r.arrival < b.oldestArrival) {
            b.oldestIdx = static_cast<int>(i);
            b.oldestArrival = r.arrival;
            b.row = r.loc.row;
        }
    }
    for (const auto &e : entries) {
        SourceBatch &b = batches[e.req->source];
        if (e.req->loc.row == b.row && b.size < params_.smsBatchCap)
            ++b.size;
    }

    auto serve_source = [&](unsigned src, std::uint32_t row) -> int {
        // Oldest issuable request of `src` to `row` in this channel.
        int best = -1;
        for (std::size_t i = 0; i < entries.size(); ++i) {
            const auto &e = entries[i];
            if (e.req->source != src || e.req->loc.row != row ||
                !e.issuable) {
                continue;
            }
            if (best < 0 || e.req->arrival < entries[best].req->arrival)
                best = static_cast<int>(i);
        }
        return best;
    };

    // Work-conserving fallback: the oldest issuable request overall.
    auto oldest_issuable = [&]() -> int {
        int best = -1;
        for (std::size_t i = 0; i < entries.size(); ++i) {
            if (!entries[i].issuable)
                continue;
            if (best < 0 ||
                entries[i].req->arrival < entries[best].req->arrival)
                best = static_cast<int>(i);
        }
        return best;
    };

    // Continue the in-flight batch when it still has visible requests.
    if (st.currentSource >= 0 && st.remaining > 0) {
        const SourceBatch &b = batches[st.currentSource];
        if (b.oldestIdx >= 0 && b.row == st.batchRow) {
            int idx = serve_source(static_cast<unsigned>(st.currentSource),
                                   st.batchRow);
            if (idx >= 0) {
                --st.remaining;
                return idx;
            }
            // The batch head cannot issue this cycle (its bank is
            // activating/precharging). The batch keeps ownership of
            // the CAS order, but the command slot stays busy with
            // whatever else is ready (work conservation).
            return oldest_issuable();
        }
    }
    st.currentSource = -1;
    st.remaining = 0;

    // Select a new batch among sources with pending requests.
    std::vector<unsigned> candidates;
    for (unsigned s = 0; s < maxSources; ++s)
        if (batches[s].oldestIdx >= 0)
            candidates.push_back(s);
    if (candidates.empty())
        return -1;

    unsigned chosen;
    if (rng_.chance(params_.smsShortestFirstProb)) {
        chosen = *std::min_element(
            candidates.begin(), candidates.end(),
            [&](unsigned a, unsigned b) {
                if (batches[a].size != batches[b].size)
                    return batches[a].size < batches[b].size;
                return batches[a].oldestArrival < batches[b].oldestArrival;
            });
    } else {
        // Round-robin across sources, starting after the last pick.
        chosen = candidates.front();
        for (unsigned off = 0; off < maxSources; ++off) {
            unsigned s = (st.rrNext + off) % maxSources;
            if (batches[s].oldestIdx >= 0) {
                chosen = s;
                break;
            }
        }
        st.rrNext = chosen + 1;
    }

    st.currentSource = static_cast<int>(chosen);
    st.batchRow = batches[chosen].row;
    st.remaining = batches[chosen].size;

    int idx = serve_source(chosen, st.batchRow);
    if (idx >= 0)
        --st.remaining;
    return idx;
}

int
SmsScheduler::fastPick(const FastIssueView &view, unsigned channel,
                       Cycles now)
{
    (void)now;
    ChannelState &st = channelState(channel);
    const RequestQueue &q = *view.queue;

    // The quantities pick() derives from its full-queue batch
    // recomputation all live on the per-source FIFOs: a source's head
    // batch is anchored at its oldest request (the FIFO head), sized
    // by counting same-row entries along the FIFO (capped), and
    // served oldest-match-first (the first issuable row match in FIFO
    // order).
    auto serve_source = [&](unsigned src, std::uint32_t row) -> int {
        for (int s = q.sourceHead(src); s >= 0; s = q.sourceNext(s)) {
            if (q.row(s) == row && view.slotIssuable(s))
                return s;
        }
        return -1;
    };
    auto batch_size = [&](unsigned src, std::uint32_t row) -> unsigned {
        unsigned n = 0;
        for (int s = q.sourceHead(src); s >= 0; s = q.sourceNext(s)) {
            if (q.row(s) == row && ++n == params_.smsBatchCap)
                break;
        }
        return n;
    };

    // Continue the in-flight batch when it still has visible requests.
    if (st.currentSource >= 0 && st.remaining > 0) {
        const unsigned cur = static_cast<unsigned>(st.currentSource);
        const int h = q.sourceHead(cur);
        if (h >= 0 && q.row(h) == st.batchRow) {
            const int s = serve_source(cur, st.batchRow);
            if (s >= 0) {
                --st.remaining;
                return s;
            }
            // Batch head blocked (its bank is activating/precharging):
            // keep batch ownership, serve whatever else is ready.
            return fastPickOldestIssuable(view);
        }
    }
    st.currentSource = -1;
    st.remaining = 0;

    // Select a new batch among sources with pending requests.
    const std::uint64_t active = q.activeSourceMask();
    if (!active)
        return -1;

    unsigned chosen = 0;
    unsigned chosen_size = 0;
    if (rng_.chance(params_.smsShortestFirstProb)) {
        // Shortest head batch first; ties by older anchor, then the
        // lower source id (pick()'s min_element over ascending
        // candidates keeps the first minimum).
        int best = -1;
        unsigned best_size = 0;
        Cycles best_arrival = 0;
        for (std::uint64_t m = active; m; m &= m - 1) {
            const unsigned src =
                static_cast<unsigned>(std::countr_zero(m));
            const int h = q.sourceHead(src);
            const unsigned size = batch_size(src, q.row(h));
            const Cycles arrival = q.slot(h).arrival;
            if (best < 0 || size < best_size ||
                (size == best_size && arrival < best_arrival)) {
                best = static_cast<int>(src);
                best_size = size;
                best_arrival = arrival;
            }
        }
        chosen = static_cast<unsigned>(best);
        chosen_size = best_size;
    } else {
        // Round-robin across sources, starting after the last pick.
        for (unsigned off = 0; off < maxSources; ++off) {
            const unsigned s = (st.rrNext + off) % maxSources;
            if (active & (std::uint64_t{1} << s)) {
                chosen = s;
                break;
            }
        }
        st.rrNext = chosen + 1;
        chosen_size = batch_size(chosen, q.row(q.sourceHead(chosen)));
    }

    st.currentSource = static_cast<int>(chosen);
    st.batchRow = q.row(q.sourceHead(chosen));
    st.remaining = chosen_size;

    const int s = serve_source(chosen, st.batchRow);
    if (s >= 0)
        --st.remaining;
    return s;
}

void
registerSmsPolicy()
{
    registerSchedulerPolicy({
        .name = "SMS",
        .aliases = {},
        .factory =
            [](const SchedulerParams &p) {
                return std::make_unique<SmsScheduler>(p);
            },
        .pickIsPure = false,
        .preservesRowHits = true,
        .needsTickEvents = false,
        .fastPickEligible = true,
        .fastPickNote = {},
    });
}

} // namespace pccs::dram
