/**
 * @file
 * The DRAM memory controller: per-channel request queues, bank state
 * machines, command issue (ACT/PRE/CAS) under DDR timing constraints,
 * and a pluggable scheduling policy.
 */

#ifndef PCCS_DRAM_CONTROLLER_HH
#define PCCS_DRAM_CONTROLLER_HH

#include <array>
#include <functional>
#include <iosfwd>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "dram/address_map.hh"
#include "dram/bank.hh"
#include "dram/config.hh"
#include "dram/port.hh"
#include "dram/request.hh"
#include "dram/scheduler.hh"

namespace pccs::dram {

/** Aggregate controller statistics (reset-able between windows). */
struct ControllerStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    /** CAS commands served from an already-open row. */
    std::uint64_t rowHits = 0;
    /** CAS commands that required an ACT (and possibly a PRE) first. */
    std::uint64_t rowMisses = 0;
    /** Total data moved, bytes. */
    std::uint64_t bytesTransferred = 0;
    /** Sum over completed requests of (completion - arrival), cycles. */
    std::uint64_t totalLatency = 0;
    /** All-bank refresh operations performed. */
    std::uint64_t refreshes = 0;
    /** Completed requests, total and per source. */
    std::uint64_t completed = 0;
    std::array<std::uint64_t, Scheduler::maxSources> bytesPerSource{};
    std::array<std::uint64_t, Scheduler::maxSources> completedPerSource{};

    /** @return row-buffer hit rate in [0, 1]. */
    double rowBufferHitRate() const
    {
        const std::uint64_t total = rowHits + rowMisses;
        return total ? static_cast<double>(rowHits) /
                           static_cast<double>(total)
                     : 0.0;
    }

    /** @return average request latency in cycles. */
    double averageLatency() const
    {
        return completed ? static_cast<double>(totalLatency) /
                               static_cast<double>(completed)
                         : 0.0;
    }

    /**
     * Dump the statistics in gem5's stat-file style: one
     * `name value # description` line per statistic.
     */
    void print(std::ostream &os, const std::string &prefix = "mc") const;
};

/**
 * A multi-channel DRAM memory controller.
 *
 * Usage: enqueue() line-sized requests; call tick() once per bus cycle;
 * completed requests are reported through the completion callback.
 */
class MemoryController : public MemoryPort
{
  public:
    using CompletionCallback = std::function<void(const Request &)>;

    MemoryController(const DramConfig &cfg,
                     std::unique_ptr<Scheduler> scheduler);

    /** @return true if channel owning `addr` has queue space. */
    bool canAccept(Addr addr) const;

    /**
     * Enqueue a request.
     * @return false when the target channel's queue is full (the caller
     *         must retry later; this is the request-buffer backpressure)
     */
    bool enqueue(unsigned source, Addr addr, bool is_write,
                 Cycles now) override;

    unsigned lineBytes() const override { return cfg_.lineBytes; }
    double cycleSeconds() const override
    {
        return cfg_.timing.cycleSeconds();
    }
    Addr addressSpan() const override
    {
        return mapper_.addressSpan();
    }

    /** Advance the controller by one bus cycle. */
    void tick(Cycles now);

    /** @return number of requests in queues plus in flight. */
    std::size_t pendingRequests() const;

    /** @return a copy of one channel's queued requests (debug/tests). */
    std::vector<Request> queueSnapshot(unsigned channel) const
    {
        return queues_[channel];
    }

    /** Install the completion callback (may be empty). */
    void setCompletionCallback(CompletionCallback cb)
    {
        onComplete_ = std::move(cb);
    }

    const ControllerStats &stats() const { return stats_; }
    void resetStats() { stats_ = ControllerStats{}; }

    const DramConfig &config() const { return cfg_; }
    const AddressMapper &mapper() const { return mapper_; }
    Scheduler &scheduler() { return *scheduler_; }

    /**
     * Effective bandwidth over an interval: bytes transferred during
     * `cycles` bus cycles as a fraction of theoretical peak, in [0, 1].
     */
    double effectiveBandwidthFraction(Cycles cycles) const;

  private:
    struct Inflight
    {
        Cycles completion;
        Request req;
        bool operator>(const Inflight &o) const
        {
            return completion > o.completion;
        }
    };

    void scheduleChannel(unsigned ch, Cycles now);
    void drainCompletions(Cycles now);
    /** @return true when the channel is consumed by refresh work. */
    bool handleRefresh(unsigned ch, Cycles now);

    DramConfig cfg_;
    AddressMapper mapper_;
    std::unique_ptr<Scheduler> scheduler_;
    std::vector<ChannelTiming> channels_;
    std::vector<std::vector<Request>> queues_;
    std::priority_queue<Inflight, std::vector<Inflight>,
                        std::greater<Inflight>>
        inflight_;
    ControllerStats stats_;
    CompletionCallback onComplete_;
    std::uint64_t nextId_ = 1;
    std::vector<QueueEntryView> scratchEntries_;
    /** Per-channel next refresh deadline (tREFI cadence). */
    std::vector<Cycles> nextRefresh_;
    /** Per-channel cycle until which a refresh blocks the channel. */
    std::vector<Cycles> refreshUntil_;
};

} // namespace pccs::dram

#endif // PCCS_DRAM_CONTROLLER_HH
