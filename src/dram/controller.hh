/**
 * @file
 * The DRAM memory controller: per-channel request queues, bank state
 * machines, command issue (ACT/PRE/CAS) under DDR timing constraints,
 * and a pluggable scheduling policy.
 */

#ifndef PCCS_DRAM_CONTROLLER_HH
#define PCCS_DRAM_CONTROLLER_HH

#include <array>
#include <functional>
#include <iosfwd>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "dram/address_map.hh"
#include "dram/bank.hh"
#include "dram/config.hh"
#include "dram/port.hh"
#include "dram/request.hh"
#include "dram/request_queue.hh"
#include "dram/scheduler.hh"

namespace pccs::dram {

/** Aggregate controller statistics (reset-able between windows). */
struct ControllerStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    /** CAS commands served from an already-open row. */
    std::uint64_t rowHits = 0;
    /** CAS commands that required an ACT (and possibly a PRE) first. */
    std::uint64_t rowMisses = 0;
    /** Total data moved, bytes. */
    std::uint64_t bytesTransferred = 0;
    /** Sum over completed requests of (completion - arrival), cycles. */
    std::uint64_t totalLatency = 0;
    /** All-bank refresh operations performed. */
    std::uint64_t refreshes = 0;
    /** Completed requests, total and per source. */
    std::uint64_t completed = 0;
    std::array<std::uint64_t, Scheduler::maxSources> bytesPerSource{};
    std::array<std::uint64_t, Scheduler::maxSources> completedPerSource{};

    /** @return row-buffer hit rate in [0, 1]. */
    double rowBufferHitRate() const
    {
        const std::uint64_t total = rowHits + rowMisses;
        return total ? static_cast<double>(rowHits) /
                           static_cast<double>(total)
                     : 0.0;
    }

    /** @return average request latency in cycles. */
    double averageLatency() const
    {
        return completed ? static_cast<double>(totalLatency) /
                               static_cast<double>(completed)
                         : 0.0;
    }

    /**
     * Dump the statistics in gem5's stat-file style: one
     * `name value # description` line per statistic.
     */
    void print(std::ostream &os, const std::string &prefix = "mc") const;
};

/**
 * A multi-channel DRAM memory controller.
 *
 * Usage: enqueue() line-sized requests; call tick() once per bus cycle;
 * completed requests are reported through the completion callback.
 */
class MemoryController : public MemoryPort
{
  public:
    using CompletionCallback = std::function<void(const Request &)>;

    MemoryController(const DramConfig &cfg,
                     std::unique_ptr<Scheduler> scheduler);

    /** @return true if channel owning `addr` has queue space. */
    bool canAccept(Addr addr) const;

    /**
     * Enqueue a request.
     * @return false when the target channel's queue is full (the caller
     *         must retry later; this is the request-buffer backpressure)
     */
    bool enqueue(unsigned source, Addr addr, bool is_write,
                 Cycles now) override;

    unsigned lineBytes() const override { return cfg_.lineBytes; }
    double cycleSeconds() const override
    {
        return cfg_.timing.cycleSeconds();
    }
    Addr addressSpan() const override
    {
        return mapper_.addressSpan();
    }

    /**
     * Advance the controller by one bus cycle.
     * @return true when the cycle was "active": a completion drained,
     *         a command (ACT/PRE/CAS) issued, or refresh made progress.
     *         A false return guarantees this cycle changed no
     *         controller, bank, or scheduler state, which is what lets
     *         the event-driven core skip ahead (see nextEventCycle()).
     */
    bool tick(Cycles now);

    /**
     * Earliest cycle >= now + 1 at which tick() could do anything,
     * assuming no new requests arrive in between: the next inflight
     * completion, the next scheduler tick event, and per channel with
     * queued requests the next refresh deadline / refresh unblock /
     * bank, bus, or rank timing expiry. Conservative: waking earlier
     * than necessary is a no-op tick; the returned cycle is never
     * *later* than the first active cycle. kNoEvent when the
     * controller is fully idle.
     */
    Cycles nextEventCycle(Cycles now) const;

    /**
     * Enable/disable the lazy per-channel scan used by the
     * event-driven core: while a channel's cached wake cycle lies in
     * the future, tick() skips rebuilding and re-evaluating that
     * channel's scheduler view entirely. The cache is refreshed after
     * every evaluation; for side-effect-free policies (pickIsPure())
     * it additionally survives enqueues (tightened by the newcomer's
     * own bound) and command issues (advanced to the next legality
     * bound), while SMS and PARBS invalidate on both so their
     * rebatching picks run on exactly the reference cycles. Off by
     * default so the
     * reference mode stays the plain every-cycle-evaluates-everything
     * specification; bit-exact either way (skipped evaluations are
     * provably no-ops — see the audit notes in the sched_*.cc files).
     */
    void setLazyChannelScan(bool on);

    /** @return number of requests in queues plus in flight. */
    std::size_t pendingRequests() const;

    /** @return a copy of one channel's queued requests (debug/tests). */
    std::vector<Request> queueSnapshot(unsigned channel) const
    {
        const RequestQueue &q = queues_[channel];
        return {q.begin(), q.end()};
    }

    /**
     * Banks of `channel` whose open row has queued requests, as a
     * bitmask (incrementally maintained by the queue's per-bank hit
     * lists; debug/tests).
     */
    std::uint32_t pendingRowHitMask(unsigned channel) const
    {
        return static_cast<std::uint32_t>(queues_[channel].hitMask());
    }

    /**
     * Times the scheduler-view scratch buffers grew after
     * construction; stays 0 because they are reserved to the queue
     * capacity up front (debug/tests).
     */
    std::size_t scratchReallocations() const { return scratchReallocs_; }

    /** Install the completion callback (may be empty). */
    void setCompletionCallback(CompletionCallback cb)
    {
        onComplete_ = std::move(cb);
    }

    const ControllerStats &stats() const { return stats_; }
    void resetStats() { stats_ = ControllerStats{}; }

    const DramConfig &config() const { return cfg_; }
    const AddressMapper &mapper() const { return mapper_; }
    Scheduler &scheduler() { return *scheduler_; }

    /**
     * Effective bandwidth over an interval: bytes transferred during
     * `cycles` bus cycles as a fraction of theoretical peak, in [0, 1].
     */
    double effectiveBandwidthFraction(Cycles cycles) const;

  private:
    struct Inflight
    {
        Cycles completion;
        Request req;
        bool operator>(const Inflight &o) const
        {
            return completion > o.completion;
        }
    };

    enum class RefreshOutcome
    {
        NotDue,     ///< no refresh work; normal scheduling proceeds
        Busy,       ///< channel consumed by refresh, nothing changed
        Progressed, ///< channel consumed and a PRE/refresh was issued
    };

    /**
     * @return true when a command (ACT/PRE/CAS) was issued.
     * When `wake` is non-null (lazy scan), it receives a conservative
     * lower bound on the channel's next interesting cycle, computed as
     * a byproduct of the scheduler-view build — no second queue scan.
     * Dispatches to the fast issue engine (bank-mask and source-mask
     * evaluation over the queue's candidate lists) when the policy is
     * eligible and PCCS_DRAM_FASTPATH is on; the materialized
     * full-scan path is retained both as the escape hatch (fastPick
     * fallback states) and as the reference the engine is verified
     * against.
     */
    bool scheduleChannel(unsigned ch, Cycles now, Cycles *wake = nullptr);
    /** The retained materialized evaluation (post-refresh-prologue). */
    bool scheduleChannelSlow(unsigned ch, Cycles now, Cycles *wake);
    /** The mask-based fast issue engine (post-refresh-prologue). */
    bool scheduleChannelFast(unsigned ch, Cycles now, Cycles *wake);
    /**
     * Issue the chosen command (CAS for a hit, else PRE/ACT) and apply
     * every side effect: bank/bus timing, stats, scheduler
     * notification, hit-list maintenance, dequeue. Shared by both
     * evaluation paths so they cannot drift.
     * @return the post-command legality bound of the *chosen*
     *         request's next command (kNoEvent for a CAS, unless it
     *         drained the last hit of a masked bank).
     */
    Cycles issueCommand(unsigned ch, int slot, bool row_hit, Cycles now,
                        std::uint64_t masked_banks);
    /** The post-issue lazy-wake bound shared by both paths. */
    Cycles issuedWakeBound(unsigned ch, bool row_hit, unsigned ready_hit,
                           unsigned ready_other, Cycles future,
                           Cycles own, Cycles now) const;
    /** @return true when at least one completion drained. */
    bool drainCompletions(Cycles now);
    RefreshOutcome handleRefresh(unsigned ch, Cycles now);
    /**
     * Refresh-drain cursor shared by handleRefresh and
     * channelNextEvent (the two bank scans this helper replaced with
     * one open-row-mask lookup): the lowest-indexed open bank of `ch`
     * — the bank whose PRE gates refresh progress — or -1 when every
     * bank is closed. When a bank is returned, *pre_at receives the
     * earliest cycle >= now its PRE is legal (== now when it can
     * issue immediately).
     */
    int firstReadyBank(unsigned ch, Cycles now, Cycles *pre_at) const;
    /**
     * Earliest cycle >= now + 1 at which channel `ch` (which must have
     * queued requests) could issue a command or make refresh progress.
     */
    Cycles channelNextEvent(unsigned ch, Cycles now) const;
    /** The O(occupied banks) bank-mask form of the same bound. */
    Cycles channelNextEventFast(unsigned ch, Cycles now) const;
    /**
     * Earliest cycle >= now + 1 at which request `r` alone could have
     * its next command issued (kNoEvent when its PRE is masked by
     * pending row hits). Used to tighten a channel's cached wake on
     * enqueue without rescanning the whole queue.
     */
    Cycles requestIssueBound(const Request &r, Cycles now) const;

    DramConfig cfg_;
    AddressMapper mapper_;
    std::unique_ptr<Scheduler> scheduler_;
    std::vector<ChannelTiming> channels_;
    std::vector<RequestQueue> queues_;
    std::priority_queue<Inflight, std::vector<Inflight>,
                        std::greater<Inflight>>
        inflight_;
    ControllerStats stats_;
    CompletionCallback onComplete_;
    std::uint64_t nextId_ = 1;
    std::vector<QueueEntryView> scratchEntries_;
    /** Queue slot ids parallel to scratchEntries_ (O(1) dequeue). */
    std::vector<int> scratchSlots_;
    /** Scratch regrowths after construction (must stay 0). */
    std::size_t scratchReallocs_ = 0;
    /** Per-channel next refresh deadline (tREFI cadence). */
    std::vector<Cycles> nextRefresh_;
    /** Per-channel cycle until which a refresh blocks the channel. */
    std::vector<Cycles> refreshUntil_;
    /**
     * Lazy-scan cache: channel ch cannot issue before channelWake_[ch]
     * (valid only while lazyChannels_; 0 = evaluate). Maintained by
     * tick(), reset by enqueue() and setLazyChannelScan().
     */
    std::vector<Cycles> channelWake_;
    bool lazyChannels_ = false;
    /**
     * Cached scheduler_->pickIsPure(): when true, the lazy scan keeps
     * a channel's cached wake alive across enqueues (min-ing in the
     * newcomer's own bound) and across successful command issues
     * (jumping straight to the next legality bound) instead of forcing
     * a re-evaluation on the following cycle.
     */
    bool purePick_ = false;
    /**
     * dramFastPathEnabled() sampled at construction: gates both the
     * fast issue engine and the bank-mask next-event bound
     * (PCCS_DRAM_FASTPATH=0 forces the retained full-scan paths).
     */
    bool fastEnabled_ = false;
    /** Cached scheduler_->fastPickEligible(). */
    bool fastEligible_ = false;
};

} // namespace pccs::dram

#endif // PCCS_DRAM_CONTROLLER_HH
