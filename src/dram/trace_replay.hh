/**
 * @file
 * Trace-driven traffic: replays a recorded address trace through a
 * memory port at a paced rate. This is the front end real
 * DRAM-simulator studies use when synthetic streams are not faithful
 * enough (the paper drives Ramulator from Pin traces the same way).
 *
 * Trace format (text, one request per line, '#' comments allowed):
 *
 *     R 0x1a2b3c40
 *     W 0x1a2b3c80
 *     0x1a2b3cc0        # bare addresses default to reads
 */

#ifndef PCCS_DRAM_TRACE_REPLAY_HH
#define PCCS_DRAM_TRACE_REPLAY_HH

#include <string>
#include <vector>

#include "dram/port.hh"
#include "dram/request.hh"

namespace pccs::dram {

/** One trace record. */
struct TraceEntry
{
    Addr addr = 0;
    bool isWrite = false;
};

/** Parse a trace file; fatal on I/O errors, warns on bad lines. */
std::vector<TraceEntry> loadTrace(const std::string &path);

/** Configuration of a replay source. */
struct ReplayParams
{
    /** Source id (< Scheduler::maxSources). */
    unsigned source = 0;
    /** Issue pacing, GB/s (the trace's recorded demand). */
    GBps demand = 10.0;
    /** Maximum outstanding requests. */
    unsigned mlp = 64;
    /** Restart from the beginning when the trace ends. */
    bool loop = true;
};

/**
 * Replays a trace through a memory port with token-bucket pacing and
 * bounded outstanding requests (same pacing model as the synthetic
 * generator, but the address stream comes from the trace).
 */
class TraceReplayGenerator
{
  public:
    TraceReplayGenerator(const ReplayParams &params,
                         std::vector<TraceEntry> trace,
                         MemoryPort &port);

    /**
     * Advance through bus cycle `now`: accrue tokens for every cycle
     * since the last call (bit-identical capped single-cycle additions
     * whether batched or not), then issue eligible requests.
     * @return true when at least one line was issued.
     */
    bool tick(Cycles now);

    /**
     * Earliest cycle >= now + 1 at which tick() could issue a request,
     * given no completions arrive in between; kNoEvent when gated on
     * external progress (MLP, backpressure, exhausted trace).
     * Conservative: may wake early, never late.
     */
    Cycles nextIssueEvent(Cycles now) const;

    /** Notify that one of this source's requests completed. */
    void onComplete(const Request &req);

    /** @return true when a non-looping trace is fully issued. */
    bool exhausted() const
    {
        return !params_.loop && position_ >= trace_.size();
    }

    std::uint64_t completedLines() const { return completedLines_; }
    std::uint64_t issuedLines() const { return issuedLines_; }
    unsigned outstanding() const { return outstanding_; }
    unsigned source() const { return params_.source; }

    /** Zero the measurement counters. */
    void resetMeasurement();

  private:
    ReplayParams params_;
    std::vector<TraceEntry> trace_;
    MemoryPort &port_;
    /** Apply `n` single-cycle capped token additions. */
    void advanceTokens(Cycles n);

    std::size_t position_ = 0;
    double tokens_ = 0.0;
    double tokensPerCycle_;
    double tokenCap_;
    /** Tokens are accrued for every cycle < tickedThrough_. */
    Cycles tickedThrough_ = 0;
    /** Last attempt hit request-buffer backpressure. */
    bool blocked_ = false;
    unsigned outstanding_ = 0;
    std::uint64_t completedLines_ = 0;
    std::uint64_t issuedLines_ = 0;
};

} // namespace pccs::dram

#endif // PCCS_DRAM_TRACE_REPLAY_HH
