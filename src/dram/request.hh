/**
 * @file
 * Memory request representation shared by traffic generators, the
 * memory controller, and scheduling policies.
 */

#ifndef PCCS_DRAM_REQUEST_HH
#define PCCS_DRAM_REQUEST_HH

#include <cstdint>

#include "common/units.hh"

namespace pccs::dram {

/** Physical location of a request after address decoding. */
struct DecodedAddr
{
    unsigned channel = 0;
    unsigned bank = 0;
    std::uint32_t row = 0;
    unsigned column = 0;
};

/** A single cache-line-sized memory request. */
struct Request
{
    /** Monotonically increasing id, assigned at enqueue. */
    std::uint64_t id = 0;
    /** Id of the requesting core / processing unit. */
    unsigned source = 0;
    /** True for writes, false for reads. */
    bool isWrite = false;
    /** Physical address (line aligned). */
    Addr addr = 0;
    /** Decoded channel/bank/row/column. */
    DecodedAddr loc;
    /** Cycle the request entered the request buffer. */
    Cycles arrival = 0;
    /** Cycle the CAS command was issued (0 until then). */
    Cycles casIssued = 0;
    /** Cycle the data burst completes (0 until scheduled). */
    Cycles completion = 0;
    /** True once the request needed an ACT (row miss/conflict). */
    bool neededActivate = false;
};

} // namespace pccs::dram

#endif // PCCS_DRAM_REQUEST_HH
