/**
 * @file
 * DRAM device timing parameters.
 *
 * All values are expressed in memory-bus clock cycles (one cycle per
 * DRAM command slot; the data bus moves two transfers per cycle, DDR).
 * The presets follow standard datasheet values for the devices the
 * paper's experiments use: DDR4-3200 for the memory-controller study
 * (Table 1) and LPDDR4x-2133/4266 for the Xavier-like SoC.
 */

#ifndef PCCS_DRAM_TIMING_HH
#define PCCS_DRAM_TIMING_HH

#include "common/units.hh"

namespace pccs::dram {

/**
 * Timing constraints of one DRAM device generation, in bus cycles.
 *
 * Only the constraints that matter for bandwidth/contention studies are
 * modeled; per-bank-group and refresh-management subtleties are folded
 * into the first-order parameters below.
 */
struct DramTimingParams
{
    /** Bus clock frequency in MHz (transfers happen at 2x, DDR). */
    MHz busClockMhz = 1600.0;

    /** RAS-to-CAS delay: ACT to first READ/WRITE on the bank. */
    Cycles tRCD = 22;
    /** Row precharge time: PRE to next ACT on the bank. */
    Cycles tRP = 22;
    /** CAS latency: READ command to first data beat. */
    Cycles tCL = 22;
    /** Minimum row-open time: ACT to PRE on the bank. */
    Cycles tRAS = 52;
    /** Data burst length in bus cycles (8 beats / 2 per cycle = 4). */
    Cycles tBURST = 4;
    /** CAS-to-CAS minimum spacing on a channel. */
    Cycles tCCD = 4;
    /** ACT-to-ACT minimum spacing across banks of a rank. */
    Cycles tRRD = 8;
    /** Four-activate window per rank. */
    Cycles tFAW = 34;
    /** Write recovery: last write data to PRE on the bank. */
    Cycles tWR = 24;
    /** Read-to-precharge delay on the bank. */
    Cycles tRTP = 12;
    /** Write-to-read turnaround on the channel. */
    Cycles tWTR = 12;
    /** Average refresh interval per channel. */
    Cycles tREFI = 12480;
    /** All-bank refresh duration (channel blocked). */
    Cycles tRFC = 560;

    /** @return bus cycle duration in seconds. */
    double cycleSeconds() const { return 1.0 / mhzToHz(busClockMhz); }

    /** @return seconds represented by n bus cycles. */
    double secondsOf(Cycles n) const
    {
        return static_cast<double>(n) * cycleSeconds();
    }
};

/** DDR4-3200 preset matching Table 1 of the paper (per channel). */
DramTimingParams ddr4_3200();

/**
 * LPDDR4x at a selectable I/O clock. Xavier runs its 256-bit LPDDR4x
 * interface at 2133 MHz; Section 3.3 underclocks it to 1600/1333/1066.
 */
DramTimingParams lpddr4x(MHz io_clock_mhz);

} // namespace pccs::dram

#endif // PCCS_DRAM_TIMING_HH
