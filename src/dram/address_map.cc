#include "address_map.hh"

#include <bit>

#include "common/logging.hh"

namespace pccs::dram {

namespace {

unsigned
log2Exact(unsigned v, const char *what)
{
    PCCS_ASSERT(v > 0 && std::has_single_bit(v),
                "%s (%u) must be a nonzero power of two", what, v);
    return static_cast<unsigned>(std::countr_zero(v));
}

} // namespace

AddressMapper::AddressMapper(const DramConfig &cfg)
    : lineShift_(log2Exact(cfg.lineBytes, "lineBytes")),
      channelBits_(log2Exact(cfg.channels, "channels")),
      columnBits_(log2Exact(cfg.linesPerRow(), "linesPerRow")),
      bankBits_(log2Exact(cfg.banksPerChannel, "banksPerChannel")),
      rowBits_(log2Exact(cfg.rowsPerBank, "rowsPerBank")),
      xorHash_(cfg.xorBankHash)
{
}

DecodedAddr
AddressMapper::decode(Addr addr) const
{
    Addr v = addr >> lineShift_;
    DecodedAddr loc;
    loc.channel = static_cast<unsigned>(v & ((1u << channelBits_) - 1));
    v >>= channelBits_;
    loc.column = static_cast<unsigned>(v & ((1u << columnBits_) - 1));
    v >>= columnBits_;
    unsigned bank = static_cast<unsigned>(v & ((1u << bankBits_) - 1));
    v >>= bankBits_;
    loc.row = static_cast<std::uint32_t>(v & ((1ull << rowBits_) - 1));
    if (xorHash_)
        bank ^= loc.row & ((1u << bankBits_) - 1);
    loc.bank = bank;
    return loc;
}

Addr
AddressMapper::encode(const DecodedAddr &loc) const
{
    unsigned bank = loc.bank;
    if (xorHash_)
        bank ^= loc.row & ((1u << bankBits_) - 1);
    Addr v = loc.row;
    v = (v << bankBits_) | bank;
    v = (v << columnBits_) | loc.column;
    v = (v << channelBits_) | loc.channel;
    return v << lineShift_;
}

Addr
AddressMapper::addressSpan() const
{
    return Addr{1} << (lineShift_ + channelBits_ + columnBits_ +
                       bankBits_ + rowBits_);
}

} // namespace pccs::dram
