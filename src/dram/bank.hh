/**
 * @file
 * Per-bank and per-channel DRAM timing state machines.
 *
 * Each bank tracks its open row and the earliest cycles at which the
 * next ACT / READ / WRITE / PRE command may legally issue. The channel
 * additionally tracks data-bus occupancy, the one-command-per-cycle
 * command slot, the rank-level four-activate window (tFAW) and the
 * ACT-to-ACT spacing (tRRD).
 */

#ifndef PCCS_DRAM_BANK_HH
#define PCCS_DRAM_BANK_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "dram/timing.hh"

namespace pccs::dram {

/** Row-buffer state machine of a single DRAM bank. */
class Bank
{
  public:
    static constexpr std::int64_t noRow = -1;

    /** @return the open row index, or noRow when precharged. */
    std::int64_t openRow() const { return openRow_; }

    /** @return true when an ACT may issue at cycle now. */
    bool canActivate(Cycles now) const
    {
        return openRow_ == noRow && now >= nextAct_;
    }

    /** @return true when a PRE may issue at cycle now. */
    bool canPrecharge(Cycles now) const
    {
        return openRow_ != noRow && now >= nextPre_;
    }

    /** @return true when a CAS to `row` may issue at cycle now. */
    bool canAccess(Cycles now, std::uint32_t row) const
    {
        return openRow_ == static_cast<std::int64_t>(row) &&
               now >= nextCas_;
    }

    /**
     * Earliest-legality accessors for the event-driven core: with the
     * bank state frozen (no commands issued in between), canActivate /
     * canPrecharge / canAccess first become true exactly at these
     * cycles. They say nothing about the open-row precondition — the
     * caller pairs them with openRow().
     */
    Cycles nextActivateAt() const { return nextAct_; }
    Cycles nextPrechargeAt() const { return nextPre_; }
    Cycles nextAccessAt() const { return nextCas_; }

    /** Issue ACT(row) at cycle now; caller checked legality. */
    void activate(Cycles now, std::uint32_t row, const DramTimingParams &t);

    /** Issue PRE at cycle now; caller checked legality. */
    void precharge(Cycles now, const DramTimingParams &t);

    /**
     * Issue a CAS at cycle now; caller checked legality.
     * @param is_write write CAS (affects the precharge constraint)
     * @return the cycle at which the data burst completes
     */
    Cycles access(Cycles now, bool is_write, const DramTimingParams &t);

  private:
    std::int64_t openRow_ = noRow;
    Cycles nextAct_ = 0;
    Cycles nextCas_ = 0;
    Cycles nextPre_ = 0;
};

/** Shared timing state of one channel (banks + bus + rank windows). */
class ChannelTiming
{
  public:
    ChannelTiming(unsigned banks, const DramTimingParams &timing);

    Bank &bank(unsigned i) { return banks_[i]; }
    const Bank &bank(unsigned i) const { return banks_[i]; }
    unsigned numBanks() const { return static_cast<unsigned>(banks_.size()); }

    /**
     * Bank-state transitions, mask-maintaining: these wrap the Bank
     * mutators and keep openRowMask() in sync, so "which banks hold an
     * open row?" is one word instead of a bank scan. All command issue
     * goes through them (the raw Bank mutators stay for unit tests).
     */
    void activateBank(unsigned b, Cycles now, std::uint32_t row);
    void prechargeBank(unsigned b, Cycles now);
    /** @return the cycle the data burst completes. */
    Cycles accessBank(unsigned b, Cycles now, bool is_write);

    /** Banks currently holding an open row, one bit per bank. */
    std::uint64_t openRowMask() const { return openRowMask_; }

    /**
     * Lowest-indexed bank with an open row (the bank whose PRE gates
     * refresh drain), or -1 when every bank is precharged.
     */
    int firstOpenBank() const;

    /** @return true when the rank-level ACT constraints allow an ACT. */
    bool canActivateRank(Cycles now) const;

    /**
     * Earliest cycle at which canActivateRank() becomes true, assuming
     * no further ACTs are recorded in between (monotone thereafter).
     */
    Cycles rankActivateReadyAt() const;

    /** Record an ACT at cycle now (updates tFAW window and tRRD). */
    void recordActivate(Cycles now);

    /**
     * @return true if a CAS issued at `now` can use the data bus
     * (burst starts at now + tCL and the bus is free by then); reads
     * additionally respect the write-to-read turnaround (tWTR) after
     * the last write burst.
     */
    bool busAvailable(Cycles now, bool is_write = false) const;

    /**
     * Earliest cycle at which busAvailable(cycle, is_write) becomes
     * true, assuming no bus reservations in between.
     */
    Cycles busReadyAt(bool is_write = false) const;

    /** Reserve the data bus for a CAS issued at cycle now. */
    void reserveBus(Cycles now, bool is_write = false);

    /** @return cycle after which the data bus is free. */
    Cycles busFreeAt() const { return busFreeAt_; }

    /** @return true if the command slot is free at cycle now. */
    bool commandSlotFree(Cycles now) const { return lastCmd_ != now + 1; }

    /** Consume the command slot for cycle now. */
    void useCommandSlot(Cycles now) { lastCmd_ = now + 1; }

  private:
    const DramTimingParams &timing_;
    std::vector<Bank> banks_;
    /** Banks with an open row (maintained by the *Bank wrappers). */
    std::uint64_t openRowMask_ = 0;
    std::deque<Cycles> actWindow_;
    Cycles nextActRank_ = 0;
    Cycles busFreeAt_ = 0;
    Cycles readAllowedAt_ = 0; // tWTR after the last write burst
    Cycles lastCmd_ = 0; // stores now+1 of the cycle the slot was used
};

} // namespace pccs::dram

#endif // PCCS_DRAM_BANK_HH
