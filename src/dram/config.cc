#include "config.hh"

namespace pccs::dram {

DramConfig
table1Config()
{
    return DramConfig{};
}

} // namespace pccs::dram
