#include "trace_replay.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "dram/scheduler.hh"

namespace pccs::dram {

std::vector<TraceEntry>
loadTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file '%s'", path.c_str());

    std::vector<TraceEntry> trace;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream ls(line);
        std::string first;
        if (!(ls >> first))
            continue; // blank / comment-only

        TraceEntry e;
        std::string addr_str = first;
        if (first == "R" || first == "r" || first == "W" ||
            first == "w") {
            e.isWrite = (first == "W" || first == "w");
            if (!(ls >> addr_str)) {
                warn("trace %s:%zu: missing address", path.c_str(),
                     lineno);
                continue;
            }
        }
        try {
            e.addr = std::stoull(addr_str, nullptr, 0);
        } catch (const std::exception &) {
            warn("trace %s:%zu: bad address '%s'", path.c_str(),
                 lineno, addr_str.c_str());
            continue;
        }
        trace.push_back(e);
    }
    return trace;
}

TraceReplayGenerator::TraceReplayGenerator(const ReplayParams &params,
                                           std::vector<TraceEntry> trace,
                                           MemoryPort &port)
    : params_(params), trace_(std::move(trace)), port_(port)
{
    PCCS_ASSERT(!trace_.empty(), "replay needs a non-empty trace");
    PCCS_ASSERT(params_.demand > 0.0, "replay demand must be positive");
    PCCS_ASSERT(params_.mlp > 0, "replay mlp must be positive");
    PCCS_ASSERT(params_.source < Scheduler::maxSources,
                "source id %u out of range", params_.source);
    tokensPerCycle_ =
        params_.demand * bytesPerGB * port_.cycleSeconds();
    tokenCap_ = 8.0 * port_.lineBytes();
    // Keep addresses inside the port's space and line-aligned.
    const Addr mask = ~Addr{port_.lineBytes() - 1};
    for (auto &e : trace_)
        e.addr = (e.addr % port_.addressSpan()) & mask;
}

void
TraceReplayGenerator::advanceTokens(Cycles n)
{
    // Same bit-exactness contract as the synthetic generator: one
    // capped addition per elapsed cycle, cap is absorbing.
    for (Cycles i = 0; i < n && tokens_ < tokenCap_; ++i)
        tokens_ = std::min(tokens_ + tokensPerCycle_, tokenCap_);
}

bool
TraceReplayGenerator::tick(Cycles now)
{
    PCCS_ASSERT(now + 1 >= tickedThrough_, "replay ticked backwards");
    advanceTokens(now + 1 - tickedThrough_);
    tickedThrough_ = now + 1;
    bool issued = false;
    const double line = port_.lineBytes();
    while (tokens_ >= line && outstanding_ < params_.mlp) {
        if (position_ >= trace_.size()) {
            if (!params_.loop)
                return issued;
            position_ = 0;
        }
        const TraceEntry &e = trace_[position_];
        if (!port_.enqueue(params_.source, e.addr, e.isWrite, now)) {
            blocked_ = true;
            break; // backpressure: retry the same entry next cycle
        }
        blocked_ = false;
        ++position_;
        tokens_ -= line;
        ++outstanding_;
        ++issuedLines_;
        issued = true;
    }
    return issued;
}

Cycles
TraceReplayGenerator::nextIssueEvent(Cycles now) const
{
    // Queue backpressure and the MLP limit only clear through
    // controller activity (a CAS dequeue / a completion), which is
    // itself a wake; an exhausted non-looping trace never issues again.
    if (exhausted() || outstanding_ >= params_.mlp || blocked_)
        return kNoEvent;
    const double line = port_.lineBytes();
    if (tokens_ >= line)
        return now + 1;
    double est = (line - tokens_) / tokensPerCycle_;
    if (!(est < 1.0e15))
        est = 1.0e15;
    const auto cycles = static_cast<Cycles>(est);
    return now + (cycles > 3 ? cycles - 2 : 1);
}

void
TraceReplayGenerator::onComplete(const Request &req)
{
    PCCS_ASSERT(req.source == params_.source,
                "completion for source %u routed to source %u",
                req.source, params_.source);
    PCCS_ASSERT(outstanding_ > 0, "completion with no outstanding request");
    --outstanding_;
    ++completedLines_;
}

void
TraceReplayGenerator::resetMeasurement()
{
    completedLines_ = 0;
    issuedLines_ = 0;
}

} // namespace pccs::dram
