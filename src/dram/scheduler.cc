#include "scheduler.hh"

#include <algorithm>

#include "common/logging.hh"
#include "dram/sched_atlas.hh"
#include "dram/sched_fcfs.hh"
#include "dram/sched_sms.hh"
#include "dram/sched_tcm.hh"

namespace pccs::dram {

const char *
schedulerName(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::Fcfs:
        return "FCFS";
      case SchedulerKind::FrFcfs:
        return "FR-FCFS";
      case SchedulerKind::Atlas:
        return "ATLAS";
      case SchedulerKind::Tcm:
        return "TCM";
      case SchedulerKind::Sms:
        return "SMS";
    }
    panic("unknown SchedulerKind %d", static_cast<int>(kind));
}

SchedulerKind
schedulerFromName(const std::string &name)
{
    std::string n = name;
    std::transform(n.begin(), n.end(), n.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (n == "fcfs")
        return SchedulerKind::Fcfs;
    if (n == "fr-fcfs" || n == "frfcfs")
        return SchedulerKind::FrFcfs;
    if (n == "atlas")
        return SchedulerKind::Atlas;
    if (n == "tcm")
        return SchedulerKind::Tcm;
    if (n == "sms")
        return SchedulerKind::Sms;
    fatal("unknown scheduler name '%s'", name.c_str());
}

std::unique_ptr<Scheduler>
makeScheduler(SchedulerKind kind, const SchedulerParams &params)
{
    switch (kind) {
      case SchedulerKind::Fcfs:
        return std::make_unique<FcfsScheduler>();
      case SchedulerKind::FrFcfs:
        return std::make_unique<FrFcfsScheduler>();
      case SchedulerKind::Atlas:
        return std::make_unique<AtlasScheduler>(params);
      case SchedulerKind::Tcm:
        return std::make_unique<TcmScheduler>(params);
      case SchedulerKind::Sms:
        return std::make_unique<SmsScheduler>(params);
    }
    panic("unknown SchedulerKind %d", static_cast<int>(kind));
}

} // namespace pccs::dram
