#include "scheduler.hh"

#include <algorithm>
#include <cctype>

#include "common/logging.hh"
#include "dram/sched_atlas.hh"
#include "dram/sched_bliss.hh"
#include "dram/sched_fcfs.hh"
#include "dram/sched_medusa.hh"
#include "dram/sched_parbs.hh"
#include "dram/sched_sms.hh"
#include "dram/sched_tcm.hh"

namespace pccs::dram {
namespace {

/**
 * Registration-ordered policy table. Function-local static so lookups
 * during other translation units' static initialization are safe.
 */
std::vector<PolicyInfo> &
registry()
{
    static std::vector<PolicyInfo> policies;
    return policies;
}

/** True while ensureBuiltins() runs its register hooks, so their
 *  registerSchedulerPolicy() calls don't re-enter the installer. */
bool &
installingBuiltins()
{
    static bool installing = false;
    return installing;
}

/**
 * Install the builtin policies exactly once, before the first lookup
 * or external registration (so builtins always occupy the head of the
 * enumeration order and duplicate detection sees them).
 *
 * pccs_dram is a plain static archive: an object file whose only
 * registration mechanism is a static-initializer object would be
 * silently dropped by the linker in any binary that never names one of
 * its symbols (the CLI, for instance, only speaks policy *names*). So
 * each sched_*.cc instead exports a register hook that this table
 * calls by name — referencing the hook is what pulls the object in.
 */
void
ensureBuiltins()
{
    static const bool once = [] {
        installingBuiltins() = true;
        // Table 2 order, then the extension policies.
        registerFcfsPolicies();
        registerAtlasPolicy();
        registerTcmPolicy();
        registerSmsPolicy();
        registerBlissPolicy();
        registerParbsPolicy();
        registerMedusaPolicy();
        installingBuiltins() = false;
        return true;
    }();
    (void)once;
}

std::string
lowered(std::string_view s)
{
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) {
                       return static_cast<char>(std::tolower(c));
                   });
    return out;
}

} // namespace

void
registerSchedulerPolicy(PolicyInfo info)
{
    if (!installingBuiltins())
        ensureBuiltins();
    if (info.name.empty() || !info.factory)
        fatal("scheduler policy registration needs a name and a factory");
    for (const PolicyInfo &p : registry()) {
        if (lowered(p.name) == lowered(info.name)) {
            fatal("scheduler policy '%s' registered twice",
                  info.name.c_str());
        }
    }
    registry().push_back(std::move(info));
}

const std::vector<PolicyInfo> &
schedulerPolicies()
{
    ensureBuiltins();
    return registry();
}

std::vector<std::string>
schedulerNames()
{
    std::vector<std::string> names;
    for (const PolicyInfo &p : schedulerPolicies())
        names.push_back(p.name);
    return names;
}

const PolicyInfo *
findSchedulerPolicy(std::string_view name)
{
    const std::string n = lowered(name);
    for (const PolicyInfo &p : schedulerPolicies()) {
        if (lowered(p.name) == n)
            return &p;
        for (const std::string &alias : p.aliases) {
            if (alias == n)
                return &p;
        }
    }
    return nullptr;
}

std::string
schedulerNameList()
{
    std::string list;
    for (const PolicyInfo &p : schedulerPolicies()) {
        if (!list.empty())
            list += ", ";
        list += p.name;
    }
    return list;
}

const PolicyInfo &
schedulerFromName(std::string_view name)
{
    if (const PolicyInfo *p = findSchedulerPolicy(name))
        return *p;
    fatal("unknown scheduler name '%.*s' (valid policies: %s)",
          static_cast<int>(name.size()), name.data(),
          schedulerNameList().c_str());
}

std::unique_ptr<Scheduler>
makeScheduler(std::string_view name, const SchedulerParams &params)
{
    return schedulerFromName(name).factory(params);
}

} // namespace pccs::dram
