#include "timing.hh"

#include "common/logging.hh"

namespace pccs::dram {

DramTimingParams
ddr4_3200()
{
    DramTimingParams t;
    t.busClockMhz = 1600.0;
    t.tRCD = 22;
    t.tRP = 22;
    t.tCL = 22;
    t.tRAS = 52;
    t.tBURST = 4;
    t.tCCD = 4;
    t.tRRD = 8;
    t.tFAW = 34;
    t.tWR = 24;
    t.tRTP = 12;
    t.tWTR = 12;
    t.tREFI = 12480; // 7.8 us at 1600 MHz
    t.tRFC = 560;    // 350 ns (8 Gb density)
    return t;
}

DramTimingParams
lpddr4x(MHz io_clock_mhz)
{
    PCCS_ASSERT(io_clock_mhz > 0.0, "LPDDR4x clock must be positive");
    DramTimingParams t;
    t.busClockMhz = io_clock_mhz;
    // LPDDR4x nanosecond-class constraints converted to cycles at the
    // requested clock; values follow JEDEC LPDDR4x-typical datasheets.
    auto cyc = [io_clock_mhz](double ns) {
        return static_cast<Cycles>(ns * io_clock_mhz * 1e-3 + 0.999);
    };
    t.tRCD = cyc(18.0);
    t.tRP = cyc(18.0);
    t.tCL = cyc(15.0);
    t.tRAS = cyc(42.0);
    t.tBURST = 8; // BL16 at DDR
    t.tCCD = 8;
    t.tRRD = cyc(10.0);
    t.tFAW = cyc(40.0);
    t.tWR = cyc(18.0);
    t.tRTP = cyc(7.5);
    t.tWTR = cyc(10.0);
    t.tREFI = cyc(3904.0); // 3.9 us
    t.tRFC = cyc(280.0);
    return t;
}

} // namespace pccs::dram
