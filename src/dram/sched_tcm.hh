/**
 * @file
 * TCM: Thread Cluster Memory scheduling (Kim et al., MICRO 2010;
 * Table 2, row 4).
 *
 * Every quantum, sources are partitioned by observed memory intensity
 * into a latency-sensitive cluster (low intensity, granted the highest
 * priority) and a bandwidth-sensitive cluster. Within the bandwidth
 * cluster, ranks are shuffled periodically so no source is persistently
 * deprioritized. Prioritization order:
 *   1) latency-sensitive (non-memory-intensive) sources,
 *   2) shuffled rank among bandwidth-sensitive sources,
 *   3) row-hit requests,
 *   4) oldest requests.
 */

#ifndef PCCS_DRAM_SCHED_TCM_HH
#define PCCS_DRAM_SCHED_TCM_HH

#include <array>

#include "dram/scheduler.hh"

namespace pccs::dram {

class TcmScheduler : public Scheduler
{
  public:
    explicit TcmScheduler(const SchedulerParams &params);

    const char *name() const override { return "TCM"; }
    void tick(Cycles now) override;
    Cycles nextTickEvent() const override
    {
        return nextShuffle_ < nextQuantum_ ? nextShuffle_
                                           : nextQuantum_;
    }
    void onService(const Request &req, Cycles now, unsigned bytes) override;
    int pick(unsigned channel, std::span<const QueueEntryView> entries,
             Cycles now) override;
    bool fastPickEligible() const override { return true; }
    int fastPick(const FastIssueView &view, unsigned channel,
                 Cycles now) override;

    /** @return true if a source is in the latency-sensitive cluster. */
    bool inLatencyCluster(unsigned source) const
    {
        return latencyCluster_[source];
    }

  private:
    void recluster();
    void shuffle();

    SchedulerParams params_;
    /** Service units (bursts) attained by each source this quantum. */
    std::array<double, maxSources> quantumService_{};
    /** Smoothed per-source intensity from the previous quanta. */
    std::array<double, maxSources> intensity_{};
    /** Cluster membership, recomputed each quantum. */
    std::array<bool, maxSources> latencyCluster_{};
    /** Bitmask mirror of latencyCluster_ (fast-pick tier filter). */
    std::uint64_t latencyMask_ = 0;
    /** Rank of each bandwidth-cluster source (lower = higher priority). */
    std::array<unsigned, maxSources> rank_{};
    Cycles nextQuantum_;
    Cycles nextShuffle_;
    unsigned shuffleOffset_ = 0;
};

/** Register TCM with the policy registry. */
void registerTcmPolicy();

} // namespace pccs::dram

#endif // PCCS_DRAM_SCHED_TCM_HH
