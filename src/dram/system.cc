#include "system.hh"

#include "common/logging.hh"

namespace pccs::dram {

DramSystem::DramSystem(const DramConfig &cfg, std::string_view policy,
                       const SchedulerParams &sched_params,
                       DramRunMode mode)
    : mode_(mode),
      controller_(std::make_unique<MemoryController>(
          cfg, makeScheduler(policy, sched_params))),
      bySource_(Scheduler::maxSources, nullptr),
      replayBySource_(Scheduler::maxSources, nullptr)
{
    controller_->setLazyChannelScan(mode == DramRunMode::EventDriven);
    controller_->setCompletionCallback([this](const Request &req) {
        if (CoreTrafficGenerator *gen = bySource_[req.source]) {
            gen->onComplete(req);
            return;
        }
        TraceReplayGenerator *rep = replayBySource_[req.source];
        PCCS_ASSERT(rep != nullptr, "completion for unknown source %u",
                    req.source);
        rep->onComplete(req);
    });
}

std::size_t
DramSystem::addReplay(const ReplayParams &params,
                      std::vector<TraceEntry> trace)
{
    PCCS_ASSERT(params.source < Scheduler::maxSources,
                "source id %u out of range", params.source);
    PCCS_ASSERT(bySource_[params.source] == nullptr &&
                    replayBySource_[params.source] == nullptr,
                "duplicate generator for source %u", params.source);
    replays_.push_back(std::make_unique<TraceReplayGenerator>(
        params, std::move(trace), *controller_));
    replayBySource_[params.source] = replays_.back().get();
    return replays_.size() - 1;
}

std::size_t
DramSystem::addGenerator(const TrafficParams &params)
{
    PCCS_ASSERT(params.source < Scheduler::maxSources,
                "source id %u out of range", params.source);
    PCCS_ASSERT(bySource_[params.source] == nullptr &&
                    replayBySource_[params.source] == nullptr,
                "duplicate generator for source %u", params.source);
    generators_.push_back(
        std::make_unique<CoreTrafficGenerator>(params, *controller_));
    bySource_[params.source] = generators_.back().get();
    return generators_.size() - 1;
}

void
DramSystem::run(Cycles cycles)
{
    const Cycles end = now_ + cycles;
    if (mode_ == DramRunMode::Reference)
        runReference(end);
    else
        runEventDriven(end);
}

bool
DramSystem::stepCycle()
{
    bool active = controller_->tick(now_);
    // Rotate the issue order each cycle: with full request queues,
    // a fixed order would hand every freed slot to the lowest-
    // indexed generator (an arbitration bias no real interconnect
    // has). The rotation offset is a pure function of now_, so it is
    // unchanged by skipping quiet cycles (on which every generator's
    // tick is a no-op regardless of order).
    const std::size_t n = generators_.size();
    const std::size_t r = replays_.size();
    const std::size_t start = n ? now_ % n : 0;
    for (std::size_t i = 0; i < n; ++i)
        active |= generators_[(start + i) % n]->tick(now_);
    const std::size_t rstart = r ? now_ % r : 0;
    for (std::size_t i = 0; i < r; ++i)
        active |= replays_[(rstart + i) % r]->tick(now_);
    return active;
}

void
DramSystem::runReference(Cycles end)
{
    // The original cycle-by-cycle loop, kept as the equivalence oracle
    // (--dram-reference / PCCS_DRAM_REFERENCE).
    while (now_ < end) {
        stepCycle();
        ++now_;
    }
}

void
DramSystem::runEventDriven(Cycles end)
{
    while (now_ < end) {
        if (stepCycle()) {
            // Something happened: the very next cycle may react to it
            // (a freed queue slot, a drained row hit, a legal command),
            // so no skipping is safe.
            ++now_;
            continue;
        }
        // Quiet cycle: jump to the earliest lower bound over every
        // event source. Each bound is conservative (waking early is a
        // no-op tick), so no state transition is ever skipped; each is
        // >= now_ + 1, so progress is guaranteed.
        Cycles wake = controller_->nextEventCycle(now_);
        for (const auto &gen : generators_)
            wake = std::min(wake, gen->nextIssueEvent(now_));
        for (const auto &rep : replays_)
            wake = std::min(wake, rep->nextIssueEvent(now_));
        now_ = std::min(end, std::max(wake, now_ + 1));
    }
}

void
DramSystem::resetMeasurement()
{
    controller_->resetStats();
    for (auto &gen : generators_)
        gen->resetMeasurement();
    for (auto &rep : replays_)
        rep->resetMeasurement();
    windowStart_ = now_;
}

GBps
DramSystem::achievedBandwidth(std::size_t i) const
{
    return generators_[i]->achievedBandwidth(windowCycles());
}

double
DramSystem::effectiveBandwidthFraction() const
{
    return controller_->effectiveBandwidthFraction(windowCycles());
}

} // namespace pccs::dram
