#include "system.hh"

#include "common/logging.hh"

namespace pccs::dram {

DramSystem::DramSystem(const DramConfig &cfg, SchedulerKind policy,
                       const SchedulerParams &sched_params)
    : controller_(std::make_unique<MemoryController>(
          cfg, makeScheduler(policy, sched_params))),
      bySource_(Scheduler::maxSources, nullptr),
      replayBySource_(Scheduler::maxSources, nullptr)
{
    controller_->setCompletionCallback([this](const Request &req) {
        if (CoreTrafficGenerator *gen = bySource_[req.source]) {
            gen->onComplete(req);
            return;
        }
        TraceReplayGenerator *rep = replayBySource_[req.source];
        PCCS_ASSERT(rep != nullptr, "completion for unknown source %u",
                    req.source);
        rep->onComplete(req);
    });
}

std::size_t
DramSystem::addReplay(const ReplayParams &params,
                      std::vector<TraceEntry> trace)
{
    PCCS_ASSERT(params.source < Scheduler::maxSources,
                "source id %u out of range", params.source);
    PCCS_ASSERT(bySource_[params.source] == nullptr &&
                    replayBySource_[params.source] == nullptr,
                "duplicate generator for source %u", params.source);
    replays_.push_back(std::make_unique<TraceReplayGenerator>(
        params, std::move(trace), *controller_));
    replayBySource_[params.source] = replays_.back().get();
    return replays_.size() - 1;
}

std::size_t
DramSystem::addGenerator(const TrafficParams &params)
{
    PCCS_ASSERT(params.source < Scheduler::maxSources,
                "source id %u out of range", params.source);
    PCCS_ASSERT(bySource_[params.source] == nullptr &&
                    replayBySource_[params.source] == nullptr,
                "duplicate generator for source %u", params.source);
    generators_.push_back(
        std::make_unique<CoreTrafficGenerator>(params, *controller_));
    bySource_[params.source] = generators_.back().get();
    return generators_.size() - 1;
}

void
DramSystem::run(Cycles cycles)
{
    const Cycles end = now_ + cycles;
    const std::size_t n = generators_.size();
    const std::size_t r = replays_.size();
    while (now_ < end) {
        controller_->tick(now_);
        // Rotate the issue order each cycle: with full request queues,
        // a fixed order would hand every freed slot to the lowest-
        // indexed generator (an arbitration bias no real interconnect
        // has).
        const std::size_t start = n ? now_ % n : 0;
        for (std::size_t i = 0; i < n; ++i)
            generators_[(start + i) % n]->tick(now_);
        const std::size_t rstart = r ? now_ % r : 0;
        for (std::size_t i = 0; i < r; ++i)
            replays_[(rstart + i) % r]->tick(now_);
        ++now_;
    }
}

void
DramSystem::resetMeasurement()
{
    controller_->resetStats();
    for (auto &gen : generators_)
        gen->resetMeasurement();
    for (auto &rep : replays_)
        rep->resetMeasurement();
    windowStart_ = now_;
}

GBps
DramSystem::achievedBandwidth(std::size_t i) const
{
    return generators_[i]->achievedBandwidth(windowCycles());
}

double
DramSystem::effectiveBandwidthFraction() const
{
    return controller_->effectiveBandwidthFraction(windowCycles());
}

} // namespace pccs::dram
