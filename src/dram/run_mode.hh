/**
 * @file
 * Selection between the two DRAM simulation cores.
 *
 * The event-driven core computes the next "interesting" cycle (inflight
 * completion, refresh deadline, bank/bus/rank timing expiry, scheduler
 * quantum, token-bucket accrual) and jumps straight to it; the
 * reference core ticks every bus cycle. Both produce bit-identical
 * results (see tests/test_dram_equivalence.cc); the reference core is
 * kept as the executable specification and as a debugging fallback
 * (`--dram-reference` on the DRAM benches, or PCCS_DRAM_REFERENCE=1 in
 * the environment).
 */

#ifndef PCCS_DRAM_RUN_MODE_HH
#define PCCS_DRAM_RUN_MODE_HH

namespace pccs::dram {

/** Which run loop DramSystem::run uses. */
enum class DramRunMode
{
    EventDriven, //!< cycle-skipping next-event loop (default)
    Reference,   //!< tick every bus cycle (executable specification)
};

/** @return display name of a run mode. */
const char *dramRunModeName(DramRunMode mode);

/**
 * Process-wide default mode for newly constructed systems:
 * EventDriven, unless overridden by setDefaultDramRunMode() or by
 * setting PCCS_DRAM_REFERENCE=1 in the environment.
 */
DramRunMode defaultDramRunMode();

/** Override the process-wide default (e.g., from --dram-reference). */
void setDefaultDramRunMode(DramRunMode mode);

} // namespace pccs::dram

#endif // PCCS_DRAM_RUN_MODE_HH
