/**
 * @file
 * Selection between the two DRAM simulation cores.
 *
 * The event-driven core computes the next "interesting" cycle (inflight
 * completion, refresh deadline, bank/bus/rank timing expiry, scheduler
 * quantum, token-bucket accrual) and jumps straight to it; the
 * reference core ticks every bus cycle. Both produce bit-identical
 * results (see tests/test_dram_equivalence.cc); the reference core is
 * kept as the executable specification and as a debugging fallback
 * (`--dram-reference` on the DRAM benches, or PCCS_DRAM_REFERENCE=1 in
 * the environment).
 */

#ifndef PCCS_DRAM_RUN_MODE_HH
#define PCCS_DRAM_RUN_MODE_HH

namespace pccs::dram {

/** Which run loop DramSystem::run uses. */
enum class DramRunMode
{
    EventDriven, //!< cycle-skipping next-event loop (default)
    Reference,   //!< tick every bus cycle (executable specification)
};

/** @return display name of a run mode. */
const char *dramRunModeName(DramRunMode mode);

/**
 * Process-wide default mode for newly constructed systems:
 * EventDriven, unless overridden by setDefaultDramRunMode() or by
 * setting PCCS_DRAM_REFERENCE=1 in the environment.
 */
DramRunMode defaultDramRunMode();

/** Override the process-wide default (e.g., from --dram-reference). */
void setDefaultDramRunMode(DramRunMode mode);

/**
 * Which run loop MultiMcSystem::run uses (the Section 5 extension's
 * analogue of DramRunMode). All three modes are bit-exact against one
 * another (tests/test_multimc_equivalence.cc); they differ only in
 * how the per-cycle work is scheduled:
 *
 *  - EventDriven: one thread, per-MC nextEventCycle/nextIssueEvent
 *    bounds fused into a single min-scan, so stretches on which every
 *    controller and generator is provably quiet are skipped in one
 *    jump (idle channels cost nothing);
 *  - Sharded: EventDriven semantics with the controllers spread over
 *    worker threads. RangePartitioned mappings whose sources each
 *    live in a single controller's slice decompose into fully
 *    independent shards (epoch = the whole run, no barriers);
 *    LineInterleaved (and straddling partitioned) workloads share
 *    generator state across MCs with a one-cycle interaction latency,
 *    so controllers run in parallel within each cycle between epoch
 *    barriers (epoch = 1 cycle, the synchronization granularity);
 *  - Lockstep: tick every controller every bus cycle (the original
 *    loop, kept as the executable specification / equivalence oracle).
 */
enum class McRunMode
{
    EventDriven, //!< fused next-event min-scan over controllers
    Sharded,     //!< opt-in parallel shards (PCCS_MC_SHARDS/--mc-parallel)
    Lockstep,    //!< tick every MC every cycle (reference oracle)
};

/** @return display name of a multi-MC run mode. */
const char *mcRunModeName(McRunMode mode);

/**
 * Process-wide default mode for newly constructed MultiMcSystems:
 * EventDriven, unless PCCS_DRAM_REFERENCE=1 selects Lockstep (the
 * same switch that selects the single-controller reference core) or
 * PCCS_MC_SHARDS selects Sharded. Overridable with
 * setDefaultMcRunMode() (e.g., from --mc-parallel).
 */
McRunMode defaultMcRunMode();

/** Override the process-wide default multi-MC run mode. */
void setDefaultMcRunMode(McRunMode mode);

/**
 * Worker-thread cap for sharded multi-MC runs: the value of
 * PCCS_MC_SHARDS, or 0 (= size to min(controllers, hardware threads))
 * when the variable is unset or 0.
 */
unsigned mcShardWorkers();

/**
 * Whether event-driven controllers use the saturated-path fast issue
 * engine (bank-state bitmasks + SoA queue mirrors + per-bank candidate
 * lists with branch-light fast picks for the eligible pure policies).
 * On by default; PCCS_DRAM_FASTPATH=0 forces the original
 * full-queue-scan evaluation path for differential testing. Sampled
 * once per MemoryController at construction; the reference (lockstep)
 * core never uses the fast engine either way.
 */
bool dramFastPathEnabled();

/** Override the fast-path default (tests; affects new controllers). */
void setDramFastPathEnabled(bool on);

} // namespace pccs::dram

#endif // PCCS_DRAM_RUN_MODE_HH
