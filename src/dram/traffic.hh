/**
 * @file
 * Synthetic per-core memory traffic generation.
 *
 * Each generator models one core running a roofline-toolkit style
 * streaming kernel with a configurable standalone bandwidth demand:
 * a token bucket paces line-sized requests at the demanded rate, a
 * bounded number of outstanding requests models the core's memory-level
 * parallelism, and the address stream mixes sequential row-local
 * accesses with random jumps according to a locality knob.
 */

#ifndef PCCS_DRAM_TRAFFIC_HH
#define PCCS_DRAM_TRAFFIC_HH

#include "common/rng.hh"
#include "common/units.hh"
#include "dram/port.hh"
#include "dram/request.hh"
#include "dram/scheduler.hh"

namespace pccs::dram {

/** Configuration of one synthetic core. */
struct TrafficParams
{
    /** Source id (unique per generator, < Scheduler::maxSources). */
    unsigned source = 0;
    /** Standalone bandwidth demand in GB/s. */
    GBps demand = 10.0;
    /** Probability the next line continues the current sequential run. */
    double rowLocality = 0.97;
    /**
     * Maximum outstanding requests (memory-level parallelism). With
     * ~70-cycle loaded latencies, sustaining the full 102.4 GB/s of
     * the Table 1 system needs roughly 64 outstanding lines.
     */
    unsigned mlp = 64;
    /** Fraction of requests that are writes. */
    double writeFraction = 0.0;
    /** RNG seed for the address stream. */
    std::uint64_t seed = 1;
};

/**
 * A paced, closed-loop traffic generator bound to a memory port
 * (a single controller or a multi-controller router).
 */
class CoreTrafficGenerator
{
  public:
    CoreTrafficGenerator(const TrafficParams &params, MemoryPort &port);

    /**
     * Advance through bus cycle `now`: accrue tokens for every cycle
     * since the last call (token updates are identical capped
     * single-cycle additions whether performed eagerly or in a batch,
     * so reference and event-driven runs see bit-identical buckets),
     * then issue eligible requests.
     * @return true when at least one line was issued.
     */
    bool tick(Cycles now);

    /**
     * Earliest cycle >= now + 1 at which tick() could issue a request,
     * given no completions arrive in between. kNoEvent when issue is
     * gated on external progress (MLP limit or queue backpressure),
     * which only clears through controller activity — itself a wake.
     * Conservative: may wake a couple of cycles early, never late.
     */
    Cycles nextIssueEvent(Cycles now) const;

    /** Notify that one of this source's requests completed. */
    void onComplete(const Request &req);

    /** @return lines completed since the last resetMeasurement(). */
    std::uint64_t completedLines() const { return completedLines_; }

    /** @return lines issued since the last resetMeasurement(). */
    std::uint64_t issuedLines() const { return issuedLines_; }

    /** Zero the measurement counters (start of a window). */
    void resetMeasurement();

    /** @return the source id. */
    unsigned source() const { return params_.source; }

    /** First byte of this source's private address slice. */
    Addr regionBase() const { return regionBase_; }

    /**
     * One past the last byte the address stream can touch; with
     * regionBase(), lets a multi-MC router prove a generator's entire
     * footprint lands on a single controller.
     */
    Addr regionEnd() const
    {
        return regionBase_ + regionLines_ * port_.lineBytes();
    }

    /** @return the configured standalone demand in GB/s. */
    GBps demand() const { return params_.demand; }

    /** @return currently outstanding requests. */
    unsigned outstanding() const { return outstanding_; }

    /** Achieved bandwidth over a window of bus cycles, GB/s. */
    GBps achievedBandwidth(Cycles window_cycles) const;

  private:
    Addr nextAddress();
    /** Apply `n` single-cycle capped token additions. */
    void advanceTokens(Cycles n);

    TrafficParams params_;
    MemoryPort &port_;
    Rng rng_;
    double tokens_ = 0.0;
    double tokensPerCycle_;
    double tokenCap_;
    /** Tokens are accrued for every cycle < tickedThrough_. */
    Cycles tickedThrough_ = 0;
    unsigned outstanding_ = 0;
    std::uint64_t completedLines_ = 0;
    std::uint64_t issuedLines_ = 0;
    /** Linear line cursor within this source's address region. */
    std::uint64_t cursor_ = 0;
    Addr regionBase_;
    std::uint64_t regionLines_;
    /** Address generated but not yet accepted by the controller. */
    Addr pendingAddr_ = 0;
    bool pendingWrite_ = false;
    bool hasPending_ = false;
};

} // namespace pccs::dram

#endif // PCCS_DRAM_TRAFFIC_HH
