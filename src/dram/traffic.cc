#include "traffic.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pccs::dram {

CoreTrafficGenerator::CoreTrafficGenerator(const TrafficParams &params,
                                           MemoryPort &port)
    : params_(params), port_(port), rng_(params.seed)
{
    PCCS_ASSERT(params_.demand > 0.0, "traffic demand must be positive");
    PCCS_ASSERT(params_.mlp > 0, "traffic mlp must be positive");
    tokensPerCycle_ =
        params_.demand * bytesPerGB * port_.cycleSeconds();
    tokenCap_ = 8.0 * port_.lineBytes();

    // Give each source a private slice of the address space so sources
    // never share rows: slice the row index range.
    const Addr span = port_.addressSpan();
    regionLines_ = span / port_.lineBytes() / Scheduler::maxSources;
    PCCS_ASSERT(regionLines_ > 0, "address space too small for %u sources",
                Scheduler::maxSources);
    regionBase_ = params_.source * regionLines_ * port_.lineBytes();
    cursor_ = rng_.below(regionLines_);
}

Addr
CoreTrafficGenerator::nextAddress()
{
    if (!rng_.chance(params_.rowLocality)) {
        // Random jump within the private region (a new row almost
        // surely, modeling poor-locality strides).
        cursor_ = rng_.below(regionLines_);
    }
    const Addr addr = regionBase_ + cursor_ * port_.lineBytes();
    // Wrap on increment: the cursor stays in [0, regionLines_) instead
    // of growing without bound and being reduced at every use.
    if (++cursor_ >= regionLines_)
        cursor_ = 0;
    return addr;
}

void
CoreTrafficGenerator::advanceTokens(Cycles n)
{
    // One capped addition per elapsed cycle, never a closed form: the
    // float results must be bit-identical no matter how the cycles are
    // batched. The cap is absorbing (the addition is min-clamped), so
    // once full the remaining iterations are skippable no-ops.
    for (Cycles i = 0; i < n && tokens_ < tokenCap_; ++i)
        tokens_ = std::min(tokens_ + tokensPerCycle_, tokenCap_);
}

bool
CoreTrafficGenerator::tick(Cycles now)
{
    PCCS_ASSERT(now + 1 >= tickedThrough_,
                "traffic generator ticked backwards");
    advanceTokens(now + 1 - tickedThrough_);
    tickedThrough_ = now + 1;
    bool issued = false;
    const double line = port_.lineBytes();
    while (tokens_ >= line && outstanding_ < params_.mlp) {
        if (!hasPending_) {
            pendingAddr_ = nextAddress();
            pendingWrite_ = rng_.chance(params_.writeFraction);
            hasPending_ = true;
        }
        if (!port_.enqueue(params_.source, pendingAddr_, pendingWrite_,
                           now)) {
            // Request buffer full: hold the tokens *and the address*
            // and retry next cycle. Advancing the stream on failed
            // attempts would shred its row locality under
            // backpressure.
            break;
        }
        hasPending_ = false;
        tokens_ -= line;
        ++outstanding_;
        ++issuedLines_;
        issued = true;
    }
    return issued;
}

Cycles
CoreTrafficGenerator::nextIssueEvent(Cycles now) const
{
    // Gated on a completion (MLP) or on queue space (backpressure):
    // both only clear through controller activity, which is itself a
    // wake, so no standalone event is needed. Retries on intervening
    // cycles are pure no-ops (no RNG, no state change).
    if (outstanding_ >= params_.mlp || hasPending_)
        return kNoEvent;
    const double line = port_.lineBytes();
    if (tokens_ >= line)
        return now + 1;
    // Estimate when the bucket reaches one line. The closed form can
    // differ from the capped sequential adds by a few ulps, so wake a
    // couple of cycles early; early wakes are no-op ticks, late wakes
    // would break equivalence.
    double est = (line - tokens_) / tokensPerCycle_;
    if (!(est < 1.0e15))
        est = 1.0e15; // demand so low it may as well be an epoch away
    const auto cycles = static_cast<Cycles>(est);
    return now + (cycles > 3 ? cycles - 2 : 1);
}

void
CoreTrafficGenerator::onComplete(const Request &req)
{
    PCCS_ASSERT(req.source == params_.source,
                "completion for source %u routed to source %u",
                req.source, params_.source);
    PCCS_ASSERT(outstanding_ > 0, "completion with no outstanding request");
    --outstanding_;
    ++completedLines_;
}

void
CoreTrafficGenerator::resetMeasurement()
{
    completedLines_ = 0;
    issuedLines_ = 0;
}

GBps
CoreTrafficGenerator::achievedBandwidth(Cycles window_cycles) const
{
    const double seconds =
        static_cast<double>(window_cycles) * port_.cycleSeconds();
    return toGBps(static_cast<double>(completedLines_) *
                      port_.lineBytes(),
                  seconds);
}

} // namespace pccs::dram
