#include "traffic.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pccs::dram {

CoreTrafficGenerator::CoreTrafficGenerator(const TrafficParams &params,
                                           MemoryPort &port)
    : params_(params), port_(port), rng_(params.seed)
{
    PCCS_ASSERT(params_.demand > 0.0, "traffic demand must be positive");
    PCCS_ASSERT(params_.mlp > 0, "traffic mlp must be positive");
    tokensPerCycle_ =
        params_.demand * bytesPerGB * port_.cycleSeconds();
    tokenCap_ = 8.0 * port_.lineBytes();

    // Give each source a private slice of the address space so sources
    // never share rows: slice the row index range.
    const Addr span = port_.addressSpan();
    regionLines_ = span / port_.lineBytes() / Scheduler::maxSources;
    PCCS_ASSERT(regionLines_ > 0, "address space too small for %u sources",
                Scheduler::maxSources);
    regionBase_ = params_.source * regionLines_ * port_.lineBytes();
    cursor_ = rng_.below(regionLines_);
}

Addr
CoreTrafficGenerator::nextAddress()
{
    if (!rng_.chance(params_.rowLocality)) {
        // Random jump within the private region (a new row almost
        // surely, modeling poor-locality strides).
        cursor_ = rng_.below(regionLines_);
    }
    const Addr addr =
        regionBase_ + (cursor_ % regionLines_) * port_.lineBytes();
    ++cursor_;
    return addr;
}

void
CoreTrafficGenerator::tick(Cycles now)
{
    tokens_ = std::min(tokens_ + tokensPerCycle_, tokenCap_);
    const double line = port_.lineBytes();
    while (tokens_ >= line && outstanding_ < params_.mlp) {
        if (!hasPending_) {
            pendingAddr_ = nextAddress();
            pendingWrite_ = rng_.chance(params_.writeFraction);
            hasPending_ = true;
        }
        if (!port_.enqueue(params_.source, pendingAddr_, pendingWrite_,
                           now)) {
            // Request buffer full: hold the tokens *and the address*
            // and retry next cycle. Advancing the stream on failed
            // attempts would shred its row locality under
            // backpressure.
            break;
        }
        hasPending_ = false;
        tokens_ -= line;
        ++outstanding_;
        ++issuedLines_;
    }
}

void
CoreTrafficGenerator::onComplete(const Request &req)
{
    PCCS_ASSERT(req.source == params_.source,
                "completion for source %u routed to source %u",
                req.source, params_.source);
    PCCS_ASSERT(outstanding_ > 0, "completion with no outstanding request");
    --outstanding_;
    ++completedLines_;
}

void
CoreTrafficGenerator::resetMeasurement()
{
    completedLines_ = 0;
    issuedLines_ = 0;
}

GBps
CoreTrafficGenerator::achievedBandwidth(Cycles window_cycles) const
{
    const double seconds =
        static_cast<double>(window_cycles) * port_.cycleSeconds();
    return toGBps(static_cast<double>(completedLines_) *
                      port_.lineBytes(),
                  seconds);
}

} // namespace pccs::dram
