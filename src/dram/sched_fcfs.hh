/**
 * @file
 * FCFS and FR-FCFS scheduling policies (Table 2, rows 1-2).
 */

#ifndef PCCS_DRAM_SCHED_FCFS_HH
#define PCCS_DRAM_SCHED_FCFS_HH

#include "dram/scheduler.hh"

namespace pccs::dram {

/**
 * First-come-first-serve: schedules memory requests chronologically,
 * with no locality awareness — a row hit is never preferred over an
 * older miss, which is what collapses the row-buffer hit rate under
 * co-location (Table 3: 47.7% RBH vs FR-FCFS's 91.6%).
 */
class FcfsScheduler : public Scheduler
{
  public:
    /** In-order issue window: only this many oldest requests compete. */
    static constexpr int window = 16;

    const char *name() const override { return "FCFS"; }
    bool preservesRowHits() const override { return false; }
    int pick(unsigned channel, std::span<const QueueEntryView> entries,
             Cycles now) override;
    bool fastPickEligible() const override { return true; }
    int fastPick(const FastIssueView &view, unsigned channel,
                 Cycles now) override;
};

/**
 * First-ready FCFS (Rixner et al.): prioritizes CAS-ready row-hit
 * requests over others; ties broken by age. Maximizes row-buffer hit
 * rate and bandwidth but has no fairness control, so memory-intensive
 * sources can starve others.
 */
class FrFcfsScheduler : public Scheduler
{
  public:
    const char *name() const override { return "FR-FCFS"; }
    int pick(unsigned channel, std::span<const QueueEntryView> entries,
             Cycles now) override;
    bool fastPickEligible() const override { return true; }
    int fastPick(const FastIssueView &view, unsigned channel,
                 Cycles now) override;
};

/** Register FCFS and FR-FCFS with the policy registry. */
void registerFcfsPolicies();

} // namespace pccs::dram

#endif // PCCS_DRAM_SCHED_FCFS_HH
