#include "multi_mc.hh"

#include "common/logging.hh"

namespace pccs::dram {

const char *
mcMappingName(McMapping mapping)
{
    switch (mapping) {
      case McMapping::LineInterleaved:
        return "line-interleaved";
      case McMapping::RangePartitioned:
        return "range-partitioned";
    }
    panic("unknown McMapping %d", static_cast<int>(mapping));
}

MultiMcSystem::MultiMcSystem(const DramConfig &per_mc_cfg,
                             unsigned num_mcs, SchedulerKind policy,
                             McMapping mapping,
                             const SchedulerParams &sched_params)
    : perMcCfg_(per_mc_cfg),
      mapping_(mapping),
      bySource_(Scheduler::maxSources, nullptr)
{
    PCCS_ASSERT(num_mcs >= 1, "need at least one controller");
    for (unsigned m = 0; m < num_mcs; ++m) {
        mcs_.push_back(std::make_unique<MemoryController>(
            perMcCfg_, makeScheduler(policy, sched_params)));
        mcs_.back()->setCompletionCallback([this](const Request &req) {
            CoreTrafficGenerator *gen = bySource_[req.source];
            PCCS_ASSERT(gen != nullptr,
                        "completion for unknown source %u", req.source);
            gen->onComplete(req);
        });
    }
    perMcSpan_ = mcs_[0]->addressSpan();
}

unsigned
MultiMcSystem::route(Addr addr) const
{
    const unsigned n = numControllers();
    switch (mapping_) {
      case McMapping::LineInterleaved:
        return static_cast<unsigned>((addr / perMcCfg_.lineBytes) % n);
      case McMapping::RangePartitioned:
        return static_cast<unsigned>(
            std::min<Addr>(addr / perMcSpan_, n - 1));
    }
    panic("unknown McMapping %d", static_cast<int>(mapping_));
}

Addr
MultiMcSystem::localAddress(Addr addr) const
{
    const unsigned n = numControllers();
    switch (mapping_) {
      case McMapping::LineInterleaved: {
        const Addr line = addr / perMcCfg_.lineBytes;
        const Addr offset = addr % perMcCfg_.lineBytes;
        return (line / n) * perMcCfg_.lineBytes + offset;
      }
      case McMapping::RangePartitioned:
        return addr % perMcSpan_;
    }
    panic("unknown McMapping %d", static_cast<int>(mapping_));
}

bool
MultiMcSystem::enqueue(unsigned source, Addr addr, bool is_write,
                       Cycles now)
{
    return mcs_[route(addr)]->enqueue(source, localAddress(addr),
                                      is_write, now);
}

unsigned
MultiMcSystem::lineBytes() const
{
    return perMcCfg_.lineBytes;
}

double
MultiMcSystem::cycleSeconds() const
{
    return perMcCfg_.timing.cycleSeconds();
}

Addr
MultiMcSystem::addressSpan() const
{
    return perMcSpan_ * numControllers();
}

std::size_t
MultiMcSystem::addGenerator(const TrafficParams &params)
{
    PCCS_ASSERT(params.source < Scheduler::maxSources,
                "source id %u out of range", params.source);
    PCCS_ASSERT(bySource_[params.source] == nullptr,
                "duplicate generator for source %u", params.source);
    generators_.push_back(
        std::make_unique<CoreTrafficGenerator>(params, *this));
    bySource_[params.source] = generators_.back().get();
    return generators_.size() - 1;
}

void
MultiMcSystem::run(Cycles cycles)
{
    const Cycles end = now_ + cycles;
    const std::size_t n = generators_.size();
    while (now_ < end) {
        for (auto &mc : mcs_)
            mc->tick(now_);
        const std::size_t start = n ? now_ % n : 0;
        for (std::size_t i = 0; i < n; ++i)
            generators_[(start + i) % n]->tick(now_);
        ++now_;
    }
}

void
MultiMcSystem::resetMeasurement()
{
    for (auto &mc : mcs_)
        mc->resetStats();
    for (auto &gen : generators_)
        gen->resetMeasurement();
    windowStart_ = now_;
}

GBps
MultiMcSystem::achievedBandwidth(std::size_t i) const
{
    return generators_[i]->achievedBandwidth(windowCycles());
}

double
MultiMcSystem::effectiveBandwidthFraction() const
{
    double sum = 0.0;
    for (const auto &mc : mcs_)
        sum += mc->effectiveBandwidthFraction(windowCycles());
    return sum / static_cast<double>(mcs_.size());
}

double
MultiMcSystem::rowBufferHitRate() const
{
    std::uint64_t hits = 0, misses = 0;
    for (const auto &mc : mcs_) {
        hits += mc->stats().rowHits;
        misses += mc->stats().rowMisses;
    }
    const std::uint64_t total = hits + misses;
    return total ? static_cast<double>(hits) /
                       static_cast<double>(total)
                 : 0.0;
}

std::uint64_t
MultiMcSystem::bytesServed(unsigned mc) const
{
    return mcs_[mc]->stats().bytesTransferred;
}

} // namespace pccs::dram
