#include "multi_mc.hh"

#include <algorithm>
#include <thread>

#include "common/logging.hh"
#include "runner/spin_barrier.hh"
#include "runner/sweep_engine.hh"

namespace pccs::dram {

const char *
mcMappingName(McMapping mapping)
{
    switch (mapping) {
      case McMapping::LineInterleaved:
        return "line-interleaved";
      case McMapping::RangePartitioned:
        return "range-partitioned";
    }
    panic("unknown McMapping %d", static_cast<int>(mapping));
}

MultiMcSystem::MultiMcSystem(const DramConfig &per_mc_cfg,
                             unsigned num_mcs, std::string_view policy,
                             McMapping mapping,
                             const SchedulerParams &sched_params,
                             McRunMode mode)
    : perMcCfg_(per_mc_cfg),
      mapping_(mapping),
      mode_(mode),
      bySource_(Scheduler::maxSources, nullptr),
      deferred_(num_mcs)
{
    PCCS_ASSERT(num_mcs >= 1, "need at least one controller");
    for (unsigned m = 0; m < num_mcs; ++m) {
        mcs_.push_back(std::make_unique<MemoryController>(
            perMcCfg_, makeScheduler(policy, sched_params)));
        mcs_.back()->setCompletionCallback(
            [this, m](const Request &req) {
                if (deferCompletions_) {
                    deferred_[m].push_back(req);
                    return;
                }
                deliver(req);
            });
    }
    perMcSpan_ = mcs_[0]->addressSpan();
    setRunMode(mode);
}

void
MultiMcSystem::setRunMode(McRunMode mode)
{
    mode_ = mode;
    // Lazy channel scans are part of the fast paths; lockstep stays
    // the plain every-cycle-evaluates-everything specification.
    for (auto &mc : mcs_)
        mc->setLazyChannelScan(mode != McRunMode::Lockstep);
}

void
MultiMcSystem::deliver(const Request &req)
{
    CoreTrafficGenerator *gen = bySource_[req.source];
    PCCS_ASSERT(gen != nullptr, "completion for unknown source %u",
                req.source);
    gen->onComplete(req);
}

unsigned
MultiMcSystem::route(Addr addr) const
{
    const unsigned n = numControllers();
    switch (mapping_) {
      case McMapping::LineInterleaved:
        return static_cast<unsigned>((addr / perMcCfg_.lineBytes) % n);
      case McMapping::RangePartitioned:
        return static_cast<unsigned>(
            std::min<Addr>(addr / perMcSpan_, n - 1));
    }
    panic("unknown McMapping %d", static_cast<int>(mapping_));
}

Addr
MultiMcSystem::localAddress(Addr addr) const
{
    const unsigned n = numControllers();
    switch (mapping_) {
      case McMapping::LineInterleaved: {
        const Addr line = addr / perMcCfg_.lineBytes;
        const Addr offset = addr % perMcCfg_.lineBytes;
        return (line / n) * perMcCfg_.lineBytes + offset;
      }
      case McMapping::RangePartitioned:
        return addr % perMcSpan_;
    }
    panic("unknown McMapping %d", static_cast<int>(mapping_));
}

bool
MultiMcSystem::enqueue(unsigned source, Addr addr, bool is_write,
                       Cycles now)
{
    return mcs_[route(addr)]->enqueue(source, localAddress(addr),
                                      is_write, now);
}

unsigned
MultiMcSystem::lineBytes() const
{
    return perMcCfg_.lineBytes;
}

double
MultiMcSystem::cycleSeconds() const
{
    return perMcCfg_.timing.cycleSeconds();
}

Addr
MultiMcSystem::addressSpan() const
{
    return perMcSpan_ * numControllers();
}

std::size_t
MultiMcSystem::addGenerator(const TrafficParams &params)
{
    PCCS_ASSERT(params.source < Scheduler::maxSources,
                "source id %u out of range", params.source);
    PCCS_ASSERT(bySource_[params.source] == nullptr,
                "duplicate generator for source %u", params.source);
    generators_.push_back(
        std::make_unique<CoreTrafficGenerator>(params, *this));
    bySource_[params.source] = generators_.back().get();
    return generators_.size() - 1;
}

void
MultiMcSystem::run(Cycles cycles)
{
    const Cycles end = now_ + cycles;
    switch (mode_) {
      case McRunMode::Lockstep:
        runLockstep(end);
        return;
      case McRunMode::EventDriven:
        runEventDriven(end);
        return;
      case McRunMode::Sharded:
        runSharded(end);
        return;
    }
    panic("unknown McRunMode %d", static_cast<int>(mode_));
}

bool
MultiMcSystem::stepCycle()
{
    bool active = false;
    for (auto &mc : mcs_)
        active |= mc->tick(now_);
    // Same rotated issue order as DramSystem::stepCycle: the offset is
    // a pure function of now_, so skipping quiet cycles (on which
    // every generator's tick is a no-op regardless of order) cannot
    // perturb it.
    const std::size_t n = generators_.size();
    const std::size_t start = n ? now_ % n : 0;
    for (std::size_t i = 0; i < n; ++i)
        active |= generators_[(start + i) % n]->tick(now_);
    return active;
}

void
MultiMcSystem::runLockstep(Cycles end)
{
    // The original cycle-by-cycle loop, kept as the equivalence oracle
    // (--dram-reference / PCCS_DRAM_REFERENCE).
    while (now_ < end) {
        stepCycle();
        ++now_;
    }
}

void
MultiMcSystem::runEventDriven(Cycles end)
{
    while (now_ < end) {
        if (stepCycle()) {
            ++now_;
            continue;
        }
        // Every controller and every generator was quiet: jump to the
        // earliest cycle at which any of them could act. Idle channels
        // contribute kNoEvent and drop out of the min entirely. Each
        // controller's bound comes from its bank-mask next-event scan
        // (O(occupied banks), not a queue walk) unless
        // PCCS_DRAM_FASTPATH=0 forced the full-scan form.
        Cycles wake = kNoEvent;
        for (const auto &mc : mcs_)
            wake = std::min(wake, mc->nextEventCycle(now_));
        for (const auto &gen : generators_)
            wake = std::min(wake, gen->nextIssueEvent(now_));
        now_ = std::min(end, std::max(wake, now_ + 1));
    }
}

void
MultiMcSystem::runSharded(Cycles end)
{
    const unsigned mcs = numControllers();
    unsigned team = mcShardWorkers();
    if (team == 0)
        team = std::max(1u, std::thread::hardware_concurrency());
    team = std::min(team, mcs);
    if (team <= 1) {
        runEventDriven(end);
        return;
    }
    std::vector<std::vector<std::size_t>> shard_gens;
    if (independentShards(shard_gens))
        runIndependentShards(end, shard_gens);
    else
        runEpochSharded(end, team);
}

bool
MultiMcSystem::independentShards(
    std::vector<std::vector<std::size_t>> &out) const
{
    if (mapping_ != McMapping::RangePartitioned)
        return false;
    out.assign(mcs_.size(), {});
    for (std::size_t g = 0; g < generators_.size(); ++g) {
        const auto &gen = *generators_[g];
        // The address stream is confined to [regionBase, regionEnd);
        // with a contiguous-slice mapping, both endpoints routing to
        // the same MC proves the whole footprint does.
        const unsigned mc = route(gen.regionBase());
        if (route(gen.regionEnd() - 1) != mc)
            return false;
        out[mc].push_back(g);
    }
    return true;
}

void
MultiMcSystem::runIndependentShards(
    Cycles end, const std::vector<std::vector<std::size_t>> &shard_gens)
{
    // Clean partition: shard g-sets are disjoint, each generator only
    // ever enqueues to its own MC, and each MC only completes its own
    // generators' lines, so shard (MC m + its generators) touches no
    // state outside itself. Each shard runs the full event-driven loop
    // privately; the per-shard trace equals the global trace
    // restricted to the shard, hence bit-exactness. Epoch = the whole
    // run; no barriers.
    const std::size_t n = generators_.size();
    const Cycles begin = now_;
    runner::SweepEngine::global().parallelFor(
        mcs_.size(), [&](std::size_t m) {
            MemoryController &mc = *mcs_[m];
            const std::vector<std::size_t> &gens = shard_gens[m];
            Cycles now = begin;
            while (now < end) {
                bool active = mc.tick(now);
                // Global rotation order restricted to this shard's
                // subset: members >= the offset first (ascending),
                // then wrap.
                const std::size_t start = n ? now % n : 0;
                auto it = std::lower_bound(gens.begin(), gens.end(),
                                           start);
                for (std::size_t k = 0; k < gens.size(); ++k) {
                    if (it == gens.end())
                        it = gens.begin();
                    active |= generators_[*it]->tick(now);
                    ++it;
                }
                if (active) {
                    ++now;
                    continue;
                }
                Cycles wake = mc.nextEventCycle(now);
                for (std::size_t g : gens)
                    wake = std::min(wake,
                                    generators_[g]->nextIssueEvent(now));
                now = std::min(end, std::max(wake, now + 1));
            }
        });
    now_ = end;
}

void
MultiMcSystem::runEpochSharded(Cycles end, unsigned team)
{
    // Generators are shared state here (a LineInterleaved source
    // spreads lines over every MC), but the interaction latency is one
    // bus cycle: controllers tick before generators within a cycle,
    // and nothing a controller does at cycle t reads generator state.
    // So controllers run in parallel within each cycle (epoch = the
    // one-cycle synchronization granularity), and the serial phase
    // replays completion delivery in controller index order followed
    // by the rotated generator ticks — the exact lockstep order.
    const unsigned mcs = numControllers();
    const std::size_t n = generators_.size();
    deferCompletions_ = true;
    for (auto &d : deferred_)
        d.clear();
    std::vector<unsigned char> mc_active(mcs, 0);
    runner::SpinBarrier barrier(team);
    Cycles now = now_;
    bool done = false;

    auto mcPhase = [&](unsigned w, Cycles at) {
        const unsigned lo = w * mcs / team;
        const unsigned hi = (w + 1) * mcs / team;
        for (unsigned m = lo; m < hi; ++m)
            mc_active[m] = mcs_[m]->tick(at) ? 1 : 0;
    };

    std::vector<std::jthread> workers;
    workers.reserve(team - 1);
    for (unsigned w = 1; w < team; ++w) {
        workers.emplace_back([&, w] {
            while (true) {
                barrier.arriveAndWait(); // B1: now/done published
                if (done)
                    return;
                mcPhase(w, now);
                barrier.arriveAndWait(); // B2: controller phase over
            }
        });
    }

    while (true) {
        done = now >= end;
        barrier.arriveAndWait(); // B1
        if (done)
            break;
        mcPhase(0, now);
        barrier.arriveAndWait(); // B2
        bool active = false;
        for (unsigned m = 0; m < mcs; ++m) {
            active |= mc_active[m] != 0;
            for (const Request &req : deferred_[m])
                deliver(req);
            deferred_[m].clear();
        }
        const std::size_t start = n ? now % n : 0;
        for (std::size_t i = 0; i < n; ++i)
            active |= generators_[(start + i) % n]->tick(now);
        if (active) {
            ++now;
            continue;
        }
        // Quiet cycle: workers are parked at B1, so reading every
        // controller's wake bound from this thread is race-free.
        Cycles wake = kNoEvent;
        for (const auto &mc : mcs_)
            wake = std::min(wake, mc->nextEventCycle(now));
        for (const auto &gen : generators_)
            wake = std::min(wake, gen->nextIssueEvent(now));
        now = std::min(end, std::max(wake, now + 1));
    }
    now_ = end;
    deferCompletions_ = false;
}

void
MultiMcSystem::resetMeasurement()
{
    for (auto &mc : mcs_)
        mc->resetStats();
    for (auto &gen : generators_)
        gen->resetMeasurement();
    windowStart_ = now_;
}

GBps
MultiMcSystem::achievedBandwidth(std::size_t i) const
{
    return generators_[i]->achievedBandwidth(windowCycles());
}

double
MultiMcSystem::effectiveBandwidthFraction() const
{
    double sum = 0.0;
    for (const auto &mc : mcs_)
        sum += mc->effectiveBandwidthFraction(windowCycles());
    return sum / static_cast<double>(mcs_.size());
}

double
MultiMcSystem::rowBufferHitRate() const
{
    std::uint64_t hits = 0, misses = 0;
    for (const auto &mc : mcs_) {
        hits += mc->stats().rowHits;
        misses += mc->stats().rowMisses;
    }
    const std::uint64_t total = hits + misses;
    return total ? static_cast<double>(hits) /
                       static_cast<double>(total)
                 : 0.0;
}

std::uint64_t
MultiMcSystem::bytesServed(unsigned mc) const
{
    return mcs_[mc]->stats().bytesTransferred;
}

} // namespace pccs::dram
