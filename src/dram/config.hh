/**
 * @file
 * Structural configuration of the simulated DRAM subsystem.
 */

#ifndef PCCS_DRAM_CONFIG_HH
#define PCCS_DRAM_CONFIG_HH

#include <cstdint>

#include "dram/timing.hh"

namespace pccs::dram {

/**
 * Geometry and capacity parameters of the memory subsystem.
 *
 * The default matches Table 1 of the paper: 4 channels of 64-bit
 * DDR4-3200, 8 banks per channel, 4 KB row buffer per bank, 256-entry
 * request buffer, 102.4 GB/s theoretical peak.
 */
struct DramConfig
{
    DramTimingParams timing = ddr4_3200();

    /** Number of independent channels. */
    unsigned channels = 4;
    /** Data width of each channel in bits. */
    unsigned channelBits = 64;
    /** Banks per channel (single rank). */
    unsigned banksPerChannel = 8;
    /** Row buffer (page) size per bank, bytes. */
    unsigned rowBufferBytes = 4096;
    /** Total request-buffer entries across channels. */
    unsigned requestBufferEntries = 256;
    /** Transfer granularity of one request (a cache line), bytes. */
    unsigned lineBytes = 64;
    /** Rows per bank (bounds the row index; power of two). */
    unsigned rowsPerBank = 1u << 15;

    /** Enable XOR-based address-to-bank hashing (Table 1). */
    bool xorBankHash = true;

    /** @return request-buffer entries available to each channel. */
    unsigned queuePerChannel() const
    {
        return requestBufferEntries / channels;
    }

    /** @return bytes moved per channel per bus cycle (DDR: 2 beats). */
    double bytesPerCyclePerChannel() const
    {
        return 2.0 * (channelBits / 8.0);
    }

    /**
     * @return theoretical peak bandwidth of the whole subsystem, GB/s
     * (e.g., 102.4 for the Table 1 configuration).
     */
    GBps peakBandwidth() const
    {
        return channels * bytesPerCyclePerChannel() *
               mhzToHz(timing.busClockMhz) / bytesPerGB;
    }

    /** @return number of 64-byte lines in one row buffer. */
    unsigned linesPerRow() const { return rowBufferBytes / lineBytes; }
};

/** The Table 1 configuration (default-constructed DramConfig). */
DramConfig table1Config();

} // namespace pccs::dram

#endif // PCCS_DRAM_CONFIG_HH
