#include "sched_atlas.hh"

#include "common/logging.hh"

// Event-driven audit: pick() is stateless (reads attained-service
// tables, mutates nothing, no RNG). Its `now`-dependent starvation
// test can flip an *ordering* between two entries as time passes, but
// on skipped cycles no entry is issuable, so pick() returns -1 under
// either ordering; at the next wake the test is evaluated with the
// true `now`, exactly as the reference loop would. tick()'s quantum
// fold is the one time-triggered state change; it is exported through
// nextTickEvent() so the event core wakes on the precise boundary
// cycle.
//
// Fast-pick audit: with no starved entry the comparator ladder is
// (least attained service, row hit, age) — a source tier followed by
// the shared oldest-hit-else-oldest step, which the per-source masks
// express exactly. The starvation bit is per *entry* and can promote
// an arbitrary subset past the service ranking, so it is the one
// documented fallback state; since the queue head has the globally
// minimal arrival, "head not starved" proves no entry is starved, and
// the test costs one subtraction. Under saturation queue residence is
// far below the 20k-cycle default threshold, so the fallback is cold.
namespace pccs::dram {

AtlasScheduler::AtlasScheduler(const SchedulerParams &params)
    : params_(params), nextQuantum_(params.quantum)
{
}

void
AtlasScheduler::tick(Cycles now)
{
    if (now < nextQuantum_)
        return;
    // Quantum boundary: fold the service attained during the quantum
    // into the smoothed total (higher alpha = longer memory).
    for (unsigned s = 0; s < maxSources; ++s) {
        totalService_[s] = params_.atlasAlpha * totalService_[s] +
                           (1.0 - params_.atlasAlpha) * quantumService_[s];
        quantumService_[s] = 0.0;
    }
    nextQuantum_ = now + params_.quantum;
}

void
AtlasScheduler::onService(const Request &req, Cycles now, unsigned bytes)
{
    (void)now;
    (void)bytes;
    PCCS_ASSERT(req.source < maxSources, "source id %u out of range",
                req.source);
    // Attained service is measured in data-bus occupancy; every request
    // is one line, so one burst's worth of service per request.
    quantumService_[req.source] += 1.0;
}

int
AtlasScheduler::pick(unsigned channel,
                     std::span<const QueueEntryView> entries, Cycles now)
{
    (void)channel;
    int best = -1;
    // Rank key, in decreasing priority: starved, least attained
    // service, row hit, age.
    auto better = [&](const QueueEntryView &a,
                      const QueueEntryView &b) -> bool {
        const bool a_starved =
            now - a.req->arrival > params_.starvationThreshold;
        const bool b_starved =
            now - b.req->arrival > params_.starvationThreshold;
        if (a_starved != b_starved)
            return a_starved;
        const double a_svc = totalService_[a.req->source] +
                             quantumService_[a.req->source];
        const double b_svc = totalService_[b.req->source] +
                             quantumService_[b.req->source];
        if (a_svc != b_svc)
            return a_svc < b_svc;
        if (a.rowHit != b.rowHit)
            return a.rowHit;
        return a.req->arrival < b.req->arrival;
    };

    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (!entries[i].issuable)
            continue;
        if (best < 0 || better(entries[i], entries[best]))
            best = static_cast<int>(i);
    }
    return best;
}

int
AtlasScheduler::fastPick(const FastIssueView &view, unsigned channel,
                         Cycles now)
{
    (void)channel;
    // Starvation is per entry, not per source; once any entry crosses
    // the threshold the ladder is led by a set the source masks
    // cannot express. The queue head is the oldest entry overall, so
    // an un-starved head proves an un-starved queue.
    const RequestQueue &q = *view.queue;
    if (now - q.slot(q.head()).arrival > params_.starvationThreshold)
        return kFastPickFallback;

    const std::uint64_t issuable = view.issuableSourceMask();
    if (!issuable)
        return -1;
    // Top rank tier: issuable sources with the least attained service.
    std::uint64_t tier = 0;
    double tier_svc = 0.0;
    for (std::uint64_t m = issuable; m; m &= m - 1) {
        const unsigned src =
            static_cast<unsigned>(std::countr_zero(m));
        const double svc = totalService_[src] + quantumService_[src];
        if (!tier || svc < tier_svc) {
            tier = std::uint64_t{1} << src;
            tier_svc = svc;
        } else if (svc == tier_svc) {
            tier |= std::uint64_t{1} << src;
        }
    }
    if (tier == issuable)
        return fastPickOldestHitElseOldest(view);
    return fastPickOldestHitElseOldestOfSources(view, tier);
}

void
registerAtlasPolicy()
{
    registerSchedulerPolicy({
        .name = "ATLAS",
        .aliases = {},
        .factory =
            [](const SchedulerParams &p) {
                return std::make_unique<AtlasScheduler>(p);
            },
        .pickIsPure = true,
        .preservesRowHits = true,
        .needsTickEvents = true,
        .fastPickEligible = true,
        .fastPickNote = "falls back while any entry is starved",
    });
}

} // namespace pccs::dram
