/**
 * @file
 * PARBS: Parallelism-Aware Batch Scheduling (Mutlu & Moscibroda,
 * ISCA 2008).
 *
 * Requests are grouped into batches: when no marked requests remain
 * visible on a channel, the scheduler marks up to `parbsBatchCap` of
 * each source's oldest requests and ranks the sources shortest-job
 * first (fewest marked requests = highest rank), preserving each
 * source's bank-level parallelism by serving all of its marked
 * requests under one consistent ranking. Prioritization order:
 *   1) marked (current-batch) requests,
 *   2) higher-ranked source within the batch,
 *   3) row-hit requests,
 *   4) oldest requests.
 * Batching bounds unfairness: no source can be deprioritized for
 * longer than one batch.
 */

#ifndef PCCS_DRAM_SCHED_PARBS_HH
#define PCCS_DRAM_SCHED_PARBS_HH

#include <array>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "dram/scheduler.hh"

namespace pccs::dram {

class ParbsScheduler : public Scheduler
{
  public:
    explicit ParbsScheduler(const SchedulerParams &params);

    const char *name() const override { return "PARBS"; }
    /** pick() forms a new batch (state mutation) after queue changes. */
    bool pickIsPure() const override { return false; }
    void onService(const Request &req, Cycles now, unsigned bytes) override;
    int pick(unsigned channel, std::span<const QueueEntryView> entries,
             Cycles now) override;

    /** @return marked requests outstanding on a channel (for tests). */
    std::size_t markedCount(unsigned channel) const
    {
        return channel < channels_.size() ? channels_[channel].marked.size()
                                          : 0;
    }

  private:
    /** Per-channel batch state (channels schedule independently). */
    struct ChannelState
    {
        /** Request ids marked as members of the current batch. */
        std::unordered_set<std::uint64_t> marked;
        /** Source rank for the current batch (lower = higher priority). */
        std::array<unsigned, maxSources> rank{};
    };

    ChannelState &channelState(unsigned channel);

    SchedulerParams params_;
    std::vector<ChannelState> channels_;
};

/** Register PARBS with the policy registry. */
void registerParbsPolicy();

} // namespace pccs::dram

#endif // PCCS_DRAM_SCHED_PARBS_HH
