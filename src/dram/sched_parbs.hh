/**
 * @file
 * PARBS: Parallelism-Aware Batch Scheduling (Mutlu & Moscibroda,
 * ISCA 2008).
 *
 * Requests are grouped into batches: when no marked requests remain
 * visible on a channel, the scheduler marks up to `parbsBatchCap` of
 * each source's oldest requests and ranks the sources shortest-job
 * first (fewest marked requests = highest rank), preserving each
 * source's bank-level parallelism by serving all of its marked
 * requests under one consistent ranking. Prioritization order:
 *   1) marked (current-batch) requests,
 *   2) higher-ranked source within the batch,
 *   3) row-hit requests,
 *   4) oldest requests.
 * Batching bounds unfairness: no source can be deprioritized for
 * longer than one batch.
 *
 * Marked-set representation: at formation each source's marked
 * requests are its oldest `take` queued ones — a prefix of its
 * arrival order whose ids (assigned at enqueue, monotone) all lie
 * below one per-source bound. Later enqueues get larger ids and stay
 * unmarked, and services only shrink the prefix, so membership is the
 * O(1) test `id < markedBelow[source]` for the batch's whole
 * lifetime — no id set to hash into, and the same test serves the
 * materialized comparator and the fast path's FIFO-prefix walks.
 */

#ifndef PCCS_DRAM_SCHED_PARBS_HH
#define PCCS_DRAM_SCHED_PARBS_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "dram/scheduler.hh"

namespace pccs::dram {

class ParbsScheduler : public Scheduler
{
  public:
    explicit ParbsScheduler(const SchedulerParams &params);

    const char *name() const override { return "PARBS"; }
    /** pick() forms a new batch (state mutation) after queue changes. */
    bool pickIsPure() const override { return false; }
    void onService(const Request &req, Cycles now, unsigned bytes) override;
    int pick(unsigned channel, std::span<const QueueEntryView> entries,
             Cycles now) override;
    bool fastPickEligible() const override { return true; }
    int fastPick(const FastIssueView &view, unsigned channel,
                 Cycles now) override;

    /** @return marked requests outstanding on a channel (for tests). */
    std::size_t markedCount(unsigned channel) const
    {
        return channel < channels_.size() ? channels_[channel].markedTotal
                                          : 0;
    }

  private:
    /** Per-channel batch state (channels schedule independently). */
    struct ChannelState
    {
        /** Marked membership bound: id < markedBelow[source]. */
        std::array<std::uint64_t, maxSources> markedBelow{};
        /** Outstanding (unserviced) marked requests per source. */
        std::array<unsigned, maxSources> markedLeft{};
        /** Source rank for the current batch (lower = higher priority). */
        std::array<unsigned, maxSources> rank{};
        /** Sources with markedLeft > 0, one bit per source. */
        std::uint64_t markedSources = 0;
        /** Outstanding marked requests on the whole channel. */
        unsigned markedTotal = 0;
    };

    ChannelState &channelState(unsigned channel);

    /**
     * Shared tail of batch formation: record the per-source marked
     * counts, rebuild the marked bookkeeping, and rank the sources
     * shortest-job first. `take`/`oldest` come from either formation
     * walk (entry span or per-source FIFOs — both arrival-ordered).
     */
    void finishBatch(ChannelState &st,
                     const std::array<unsigned, maxSources> &take,
                     const std::array<Cycles, maxSources> &oldest);

    SchedulerParams params_;
    std::vector<ChannelState> channels_;
};

/** Register PARBS with the policy registry. */
void registerParbsPolicy();

} // namespace pccs::dram

#endif // PCCS_DRAM_SCHED_PARBS_HH
