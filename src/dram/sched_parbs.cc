#include "sched_parbs.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

// Event-driven audit: PARBS's pick() mutates state (batch formation),
// so like SMS it reports pickIsPure() == false and the event core
// evaluates it on every post-change cycle. A new batch forms — the
// only mutation inside pick() — exactly when no marked request is
// visible in the queue snapshot, and that condition changes solely on
// queue-content changes: a CAS unmarking via onService(), or an
// enqueue into a channel with an exhausted batch. The event core
// always processes the cycle *after* any issue/enqueue/completion,
// which is precisely when the reference loop would re-form; on every
// later skipped cycle the marked set is unchanged and non-empty, so
// pick() reads state without touching it (and PARBS uses no RNG).
// Hence batch boundaries and rankings are cycle-for-cycle identical
// across the two cores.
namespace pccs::dram {

ParbsScheduler::ParbsScheduler(const SchedulerParams &params)
    : params_(params)
{
}

ParbsScheduler::ChannelState &
ParbsScheduler::channelState(unsigned channel)
{
    if (channel >= channels_.size())
        channels_.resize(channel + 1);
    return channels_[channel];
}

void
ParbsScheduler::onService(const Request &req, Cycles now, unsigned bytes)
{
    (void)now;
    (void)bytes;
    channelState(req.loc.channel).marked.erase(req.id);
}

int
ParbsScheduler::pick(unsigned channel,
                     std::span<const QueueEntryView> entries, Cycles now)
{
    (void)now;
    ChannelState &st = channelState(channel);

    bool any_marked_visible = false;
    for (const auto &e : entries) {
        if (st.marked.count(e.req->id)) {
            any_marked_visible = true;
            break;
        }
    }

    if (!any_marked_visible && !entries.empty()) {
        // Batch formation: mark up to parbsBatchCap of each source's
        // oldest requests, then rank the sources shortest-job first so
        // light sources finish their batch quickly while each source's
        // marked requests stay under one consistent ranking (the
        // "parallelism-aware" part — its bank-level parallel accesses
        // are not interleaved apart by rank churn).
        st.marked.clear();

        std::array<std::vector<const Request *>, maxSources> per_source;
        for (const auto &e : entries) {
            PCCS_ASSERT(e.req->source < maxSources,
                        "source id %u out of range", e.req->source);
            per_source[e.req->source].push_back(e.req);
        }

        std::array<unsigned, maxSources> marked_count{};
        std::array<Cycles, maxSources> oldest{};
        for (unsigned s = 0; s < maxSources; ++s) {
            auto &reqs = per_source[s];
            if (reqs.empty())
                continue;
            std::sort(reqs.begin(), reqs.end(),
                      [](const Request *a, const Request *b) {
                          return a->arrival < b->arrival;
                      });
            const unsigned take = std::min(
                params_.parbsBatchCap,
                static_cast<unsigned>(reqs.size()));
            for (unsigned i = 0; i < take; ++i)
                st.marked.insert(reqs[i]->id);
            marked_count[s] = take;
            oldest[s] = reqs.front()->arrival;
        }

        std::array<unsigned, maxSources> order;
        std::iota(order.begin(), order.end(), 0u);
        std::sort(order.begin(), order.end(),
                  [&](unsigned a, unsigned b) {
                      // Sources outside the batch sort last; among
                      // batch members, fewest marked requests first
                      // (shortest job), ties by older work then id.
                      const bool a_in = marked_count[a] > 0;
                      const bool b_in = marked_count[b] > 0;
                      if (a_in != b_in)
                          return a_in;
                      if (marked_count[a] != marked_count[b])
                          return marked_count[a] < marked_count[b];
                      if (a_in && oldest[a] != oldest[b])
                          return oldest[a] < oldest[b];
                      return a < b;
                  });
        for (unsigned r = 0; r < maxSources; ++r)
            st.rank[order[r]] = r;
    }

    auto better = [&](const QueueEntryView &a,
                      const QueueEntryView &b) -> bool {
        const bool a_marked = st.marked.count(a.req->id) != 0;
        const bool b_marked = st.marked.count(b.req->id) != 0;
        if (a_marked != b_marked)
            return a_marked;
        if (a_marked) {
            const unsigned ra = st.rank[a.req->source];
            const unsigned rb = st.rank[b.req->source];
            if (ra != rb)
                return ra < rb;
        }
        if (a.rowHit != b.rowHit)
            return a.rowHit;
        return a.req->arrival < b.req->arrival;
    };

    int best = -1;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (!entries[i].issuable)
            continue;
        if (best < 0 || better(entries[i], entries[best]))
            best = static_cast<int>(i);
    }
    return best;
}

void
registerParbsPolicy()
{
    registerSchedulerPolicy({
        .name = "PARBS",
        .aliases = {"par-bs"},
        .factory =
            [](const SchedulerParams &p) {
                return std::make_unique<ParbsScheduler>(p);
            },
        .pickIsPure = false,
        .preservesRowHits = true,
        .needsTickEvents = false,
        // Batch formation consumes the full queue view on every call;
        // PARBS always takes the materialized evaluation.
        .fastPickEligible = false,
    });
}

} // namespace pccs::dram
