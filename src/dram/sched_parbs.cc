#include "sched_parbs.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

// Event-driven audit: PARBS's pick() mutates state (batch formation),
// so like SMS it reports pickIsPure() == false and the event core
// evaluates it on every post-change cycle. A new batch forms — the
// only mutation inside pick() — exactly when no marked request is
// visible in the queue snapshot, and that condition changes solely on
// queue-content changes: a CAS unmarking via onService(), or an
// enqueue into a channel with an exhausted batch. The event core
// always processes the cycle *after* any issue/enqueue/completion,
// which is precisely when the reference loop would re-form; on every
// later skipped cycle the marked set is unchanged and non-empty, so
// pick() reads state without touching it (and PARBS uses no RNG).
// Hence batch boundaries and rankings are cycle-for-cycle identical
// across the two cores.
//
// Fast-pick audit: marked requests leave the queue only through the
// CAS that services them, so "any marked visible" is markedTotal > 0
// and both paths re-form on identical cycles. A source's marked
// requests are the prefix of its arrival FIFO below its id bound
// (see sched_parbs.hh), so the marked tier reduces to: among the
// sources with outstanding marked requests, the minimum-rank one
// whose bounded prefix holds an issuable entry (ranks are a
// permutation, so that source is unique; within it the comparator is
// row hit then age, i.e. the first issuable hit else the first
// issuable slot of the prefix walk). When no marked entry is
// issuable, every issuable entry is unmarked and the ladder
// degenerates to FR-FCFS — the shared bank-level helper. fastPick()
// performs the same formation mutation pick() would, so the
// controller calls it on every evaluated cycle (impure-policy
// contract). No fallback states.
namespace pccs::dram {

ParbsScheduler::ParbsScheduler(const SchedulerParams &params)
    : params_(params)
{
}

ParbsScheduler::ChannelState &
ParbsScheduler::channelState(unsigned channel)
{
    if (channel >= channels_.size())
        channels_.resize(channel + 1);
    return channels_[channel];
}

void
ParbsScheduler::onService(const Request &req, Cycles now, unsigned bytes)
{
    (void)now;
    (void)bytes;
    ChannelState &st = channelState(req.loc.channel);
    // Every queued id below the bound is marked (later arrivals have
    // larger ids), so the bound test alone decides membership.
    if (req.id < st.markedBelow[req.source]) {
        if (--st.markedLeft[req.source] == 0)
            st.markedSources &= ~(std::uint64_t{1} << req.source);
        --st.markedTotal;
    }
}

void
ParbsScheduler::finishBatch(ChannelState &st,
                            const std::array<unsigned, maxSources> &take,
                            const std::array<Cycles, maxSources> &oldest)
{
    st.markedLeft = take;
    st.markedSources = 0;
    st.markedTotal = 0;
    for (unsigned s = 0; s < maxSources; ++s) {
        if (take[s]) {
            st.markedSources |= std::uint64_t{1} << s;
            st.markedTotal += take[s];
        }
    }

    std::array<unsigned, maxSources> order;
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(),
              [&](unsigned a, unsigned b) {
                  // Sources outside the batch sort last; among
                  // batch members, fewest marked requests first
                  // (shortest job), ties by older work then id.
                  const bool a_in = take[a] > 0;
                  const bool b_in = take[b] > 0;
                  if (a_in != b_in)
                      return a_in;
                  if (take[a] != take[b])
                      return take[a] < take[b];
                  if (a_in && oldest[a] != oldest[b])
                      return oldest[a] < oldest[b];
                  return a < b;
              });
    for (unsigned r = 0; r < maxSources; ++r)
        st.rank[order[r]] = r;
}

int
ParbsScheduler::pick(unsigned channel,
                     std::span<const QueueEntryView> entries, Cycles now)
{
    (void)now;
    ChannelState &st = channelState(channel);

    if (st.markedTotal == 0 && !entries.empty()) {
        // Batch formation: mark up to parbsBatchCap of each source's
        // oldest requests, then rank the sources shortest-job first so
        // light sources finish their batch quickly while each source's
        // marked requests stay under one consistent ranking (the
        // "parallelism-aware" part — its bank-level parallel accesses
        // are not interleaved apart by rank churn). The entry span is
        // walked in arrival order, so per source the first take seen
        // are its oldest and the bound after the last marked one
        // covers exactly them.
        std::array<unsigned, maxSources> take{};
        std::array<Cycles, maxSources> oldest{};
        st.markedBelow.fill(0);
        for (const auto &e : entries) {
            PCCS_ASSERT(e.req->source < maxSources,
                        "source id %u out of range", e.req->source);
            const unsigned s = e.req->source;
            if (take[s] == 0)
                oldest[s] = e.req->arrival;
            if (take[s] < params_.parbsBatchCap) {
                ++take[s];
                st.markedBelow[s] = e.req->id + 1;
            }
        }
        finishBatch(st, take, oldest);
    }

    auto marked = [&](const Request &r) -> bool {
        return r.id < st.markedBelow[r.source];
    };
    auto better = [&](const QueueEntryView &a,
                      const QueueEntryView &b) -> bool {
        const bool a_marked = marked(*a.req);
        const bool b_marked = marked(*b.req);
        if (a_marked != b_marked)
            return a_marked;
        if (a_marked) {
            const unsigned ra = st.rank[a.req->source];
            const unsigned rb = st.rank[b.req->source];
            if (ra != rb)
                return ra < rb;
        }
        if (a.rowHit != b.rowHit)
            return a.rowHit;
        return a.req->arrival < b.req->arrival;
    };

    int best = -1;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (!entries[i].issuable)
            continue;
        if (best < 0 || better(entries[i], entries[best]))
            best = static_cast<int>(i);
    }
    return best;
}

int
ParbsScheduler::fastPick(const FastIssueView &view, unsigned channel,
                         Cycles now)
{
    (void)now;
    ChannelState &st = channelState(channel);
    const RequestQueue &q = *view.queue;

    if (st.markedTotal == 0 && !q.empty()) {
        // The FIFO form of the formation walk above: a source's
        // oldest take requests are the front of its arrival FIFO.
        std::array<unsigned, maxSources> take{};
        std::array<Cycles, maxSources> oldest{};
        st.markedBelow.fill(0);
        for (std::uint64_t m = q.activeSourceMask(); m; m &= m - 1) {
            const unsigned src =
                static_cast<unsigned>(std::countr_zero(m));
            int s = q.sourceHead(src);
            oldest[src] = q.slot(s).arrival;
            unsigned n = 0;
            std::uint64_t bound = 0;
            for (; s >= 0 && n < params_.parbsBatchCap;
                 s = q.sourceNext(s)) {
                ++n;
                bound = q.serial(s) + 1;
            }
            take[src] = n;
            st.markedBelow[src] = bound;
        }
        finishBatch(st, take, oldest);
    }

    // Marked tier: the minimum-rank source with an issuable marked
    // entry; within it, the oldest issuable hit of the marked prefix,
    // else its oldest issuable entry (the prefix walk is arrival
    // order, so first found == oldest).
    int best = -1;
    unsigned best_rank = ~0u;
    for (std::uint64_t m = st.markedSources; m; m &= m - 1) {
        const unsigned src =
            static_cast<unsigned>(std::countr_zero(m));
        if (st.rank[src] >= best_rank)
            continue;
        const std::uint64_t bound = st.markedBelow[src];
        int first = -1;
        int first_hit = -1;
        for (int s = q.sourceHead(src);
             s >= 0 && q.serial(s) < bound; s = q.sourceNext(s)) {
            if (!view.slotIssuable(s))
                continue;
            if (first < 0)
                first = s;
            if (q.isHit(s)) {
                first_hit = s;
                break;
            }
        }
        const int cand = first_hit >= 0 ? first_hit : first;
        if (cand >= 0) {
            best = cand;
            best_rank = st.rank[src];
        }
    }
    if (best >= 0)
        return best;

    // No marked entry is issuable: every issuable entry is unmarked
    // and the ladder below the marked tier is plain FR-FCFS.
    return fastPickOldestHitElseOldest(view);
}

void
registerParbsPolicy()
{
    registerSchedulerPolicy({
        .name = "PARBS",
        .aliases = {"par-bs"},
        .factory =
            [](const SchedulerParams &p) {
                return std::make_unique<ParbsScheduler>(p);
            },
        .pickIsPure = false,
        .preservesRowHits = true,
        .needsTickEvents = false,
        .fastPickEligible = true,
        .fastPickNote = {},
    });
}

} // namespace pccs::dram
