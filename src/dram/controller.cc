#include "controller.hh"

#include <algorithm>
#include <ostream>

#include "common/logging.hh"

namespace pccs::dram {

MemoryController::MemoryController(const DramConfig &cfg,
                                   std::unique_ptr<Scheduler> scheduler)
    : cfg_(cfg), mapper_(cfg), scheduler_(std::move(scheduler))
{
    PCCS_ASSERT(scheduler_ != nullptr, "controller needs a scheduler");
    PCCS_ASSERT(cfg_.banksPerChannel <= 32,
                "row-hit preservation bitmask supports <= 32 banks");
    channels_.reserve(cfg_.channels);
    for (unsigned c = 0; c < cfg_.channels; ++c)
        channels_.emplace_back(cfg_.banksPerChannel, cfg_.timing);
    queues_.resize(cfg_.channels);
    for (auto &q : queues_)
        q.reserve(cfg_.queuePerChannel());
    nextRefresh_.assign(cfg_.channels, cfg_.timing.tREFI);
    refreshUntil_.assign(cfg_.channels, 0);
}

bool
MemoryController::canAccept(Addr addr) const
{
    const unsigned ch = mapper_.decode(addr).channel;
    return queues_[ch].size() < cfg_.queuePerChannel();
}

bool
MemoryController::enqueue(unsigned source, Addr addr, bool is_write,
                          Cycles now)
{
    PCCS_ASSERT(source < Scheduler::maxSources,
                "source id %u exceeds the %u-source limit", source,
                Scheduler::maxSources);
    Request req;
    req.id = nextId_++;
    req.source = source;
    req.isWrite = is_write;
    req.addr = addr;
    req.loc = mapper_.decode(addr);
    req.arrival = now;

    auto &queue = queues_[req.loc.channel];
    if (queue.size() >= cfg_.queuePerChannel())
        return false;
    queue.push_back(req);
    scheduler_->onEnqueue(queue.back());
    return true;
}

void
MemoryController::tick(Cycles now)
{
    scheduler_->tick(now);
    drainCompletions(now);
    for (unsigned ch = 0; ch < cfg_.channels; ++ch) {
        if (!queues_[ch].empty())
            scheduleChannel(ch, now);
    }
}

void
MemoryController::drainCompletions(Cycles now)
{
    while (!inflight_.empty() && inflight_.top().completion <= now) {
        const Request req = inflight_.top().req;
        inflight_.pop();
        stats_.totalLatency += req.completion - req.arrival;
        ++stats_.completed;
        ++stats_.completedPerSource[req.source];
        if (onComplete_)
            onComplete_(req);
    }
}

bool
MemoryController::handleRefresh(unsigned ch, Cycles now)
{
    ChannelTiming &timing = channels_[ch];
    if (now < refreshUntil_[ch])
        return true; // refresh in progress: channel blocked
    if (now < nextRefresh_[ch])
        return false;

    // Refresh due: close every open row, then hold the channel for
    // tRFC. Precharges obey their bank timing (one per command slot).
    for (unsigned b = 0; b < timing.numBanks(); ++b) {
        Bank &bank = timing.bank(b);
        if (bank.openRow() == Bank::noRow)
            continue;
        if (bank.canPrecharge(now))
            bank.precharge(now, cfg_.timing);
        return true; // either issued a PRE or must wait for one
    }
    refreshUntil_[ch] = now + cfg_.timing.tRFC;
    // No catch-up storms after idle stretches: refresh debt from
    // periods without traffic is irrelevant to bandwidth accounting.
    nextRefresh_[ch] =
        std::max(nextRefresh_[ch] + cfg_.timing.tREFI, now + 1);
    ++stats_.refreshes;
    return true;
}

void
MemoryController::scheduleChannel(unsigned ch, Cycles now)
{
    if (handleRefresh(ch, now))
        return;

    ChannelTiming &timing = channels_[ch];
    auto &queue = queues_[ch];

    // Row-hit preservation: a bank whose open row still has pending
    // requests must not be precharged for a conflicting request --
    // otherwise a PRE slips into the cycles between data bursts and
    // destroys every row chain (all policies would degenerate to
    // conflict-per-access behavior).
    std::uint32_t pending_hits = 0; // bitmask over banks
    if (scheduler_->preservesRowHits()) {
        for (const Request &r : queue) {
            const Bank &bank = timing.bank(r.loc.bank);
            if (bank.openRow() == static_cast<std::int64_t>(r.loc.row))
                pending_hits |= 1u << r.loc.bank;
        }
    }

    // Build the scheduler's view: for each request, whether its *next
    // needed command* (CAS for an open matching row, otherwise PRE or
    // ACT) can issue this cycle.
    scratchEntries_.clear();
    scratchEntries_.reserve(queue.size());
    for (const Request &r : queue) {
        const Bank &bank = timing.bank(r.loc.bank);
        QueueEntryView e;
        e.req = &r;
        e.rowHit =
            bank.openRow() == static_cast<std::int64_t>(r.loc.row);
        if (e.rowHit) {
            e.issuable = bank.canAccess(now, r.loc.row) &&
                         timing.busAvailable(now, r.isWrite);
        } else if (bank.openRow() != Bank::noRow) {
            e.issuable = bank.canPrecharge(now) &&
                         !(pending_hits & (1u << r.loc.bank));
        } else {
            e.issuable =
                bank.canActivate(now) && timing.canActivateRank(now);
        }
        scratchEntries_.push_back(e);
    }

    const int idx = scheduler_->pick(ch, scratchEntries_, now);
    if (idx < 0)
        return;
    PCCS_ASSERT(static_cast<std::size_t>(idx) < scratchEntries_.size() &&
                    scratchEntries_[idx].issuable,
                "scheduler picked a non-issuable entry %d", idx);

    Request &req = queue[idx];
    Bank &bank = timing.bank(req.loc.bank);

    if (scratchEntries_[idx].rowHit) {
        // CAS: the request completes after CL + burst.
        const Cycles done = bank.access(now, req.isWrite, cfg_.timing);
        timing.reserveBus(now, req.isWrite);
        req.casIssued = now;
        req.completion = done;
        if (req.neededActivate)
            ++stats_.rowMisses;
        else
            ++stats_.rowHits;
        if (req.isWrite)
            ++stats_.writes;
        else
            ++stats_.reads;
        stats_.bytesTransferred += cfg_.lineBytes;
        stats_.bytesPerSource[req.source] += cfg_.lineBytes;
        scheduler_->onService(req, now, cfg_.lineBytes);
        inflight_.push(Inflight{done, req});
        queue.erase(queue.begin() + idx);
    } else if (bank.openRow() != Bank::noRow) {
        // Row conflict: close the current row first.
        bank.precharge(now, cfg_.timing);
    } else {
        // Row closed: open the request's row. Every request served
        // after this ACT without another ACT counts as a row hit;
        // this one is charged as a miss via neededActivate.
        bank.activate(now, req.loc.row, cfg_.timing);
        timing.recordActivate(now);
        req.neededActivate = true;
    }
}

void
ControllerStats::print(std::ostream &os, const std::string &prefix) const
{
    auto stat = [&](const char *name, double value, const char *desc) {
        os << prefix << "." << name << " " << value << " # " << desc
           << "\n";
    };
    stat("reads", static_cast<double>(reads), "read CAS commands");
    stat("writes", static_cast<double>(writes), "write CAS commands");
    stat("rowHits", static_cast<double>(rowHits),
         "CAS served from an open row");
    stat("rowMisses", static_cast<double>(rowMisses),
         "CAS that required an ACT");
    stat("rowBufferHitRate", rowBufferHitRate(),
         "row-buffer hit rate [0,1]");
    stat("refreshes", static_cast<double>(refreshes),
         "all-bank refresh operations");
    stat("bytesTransferred", static_cast<double>(bytesTransferred),
         "total data moved, bytes");
    stat("completed", static_cast<double>(completed),
         "completed requests");
    stat("avgLatency", averageLatency(),
         "mean request latency, cycles");
}

std::size_t
MemoryController::pendingRequests() const
{
    std::size_t n = inflight_.size();
    for (const auto &q : queues_)
        n += q.size();
    return n;
}

double
MemoryController::effectiveBandwidthFraction(Cycles cycles) const
{
    if (cycles == 0)
        return 0.0;
    const double peak_bytes =
        static_cast<double>(cycles) * cfg_.channels *
        cfg_.bytesPerCyclePerChannel();
    return static_cast<double>(stats_.bytesTransferred) / peak_bytes;
}

} // namespace pccs::dram
