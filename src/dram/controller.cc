#include "controller.hh"

#include <algorithm>
#include <ostream>

#include "common/logging.hh"

namespace pccs::dram {

MemoryController::MemoryController(const DramConfig &cfg,
                                   std::unique_ptr<Scheduler> scheduler)
    : cfg_(cfg), mapper_(cfg), scheduler_(std::move(scheduler))
{
    PCCS_ASSERT(scheduler_ != nullptr, "controller needs a scheduler");
    PCCS_ASSERT(cfg_.banksPerChannel <= 32,
                "row-hit preservation bitmask supports <= 32 banks");
    purePick_ = scheduler_->pickIsPure();
    channels_.reserve(cfg_.channels);
    queues_.reserve(cfg_.channels);
    for (unsigned c = 0; c < cfg_.channels; ++c) {
        channels_.emplace_back(cfg_.banksPerChannel, cfg_.timing);
        queues_.emplace_back(cfg_.queuePerChannel());
    }
    rowHitPending_.assign(
        static_cast<std::size_t>(cfg_.channels) * cfg_.banksPerChannel, 0);
    nextRefresh_.assign(cfg_.channels, cfg_.timing.tREFI);
    refreshUntil_.assign(cfg_.channels, 0);
    channelWake_.assign(cfg_.channels, 0);
}

void
MemoryController::setLazyChannelScan(bool on)
{
    // The cache is only maintained while lazy scanning is on; entries
    // from a previous lazy phase are stale after a non-lazy interlude.
    if (on && !lazyChannels_)
        std::fill(channelWake_.begin(), channelWake_.end(), Cycles{0});
    lazyChannels_ = on;
}

bool
MemoryController::canAccept(Addr addr) const
{
    const unsigned ch = mapper_.decode(addr).channel;
    return !queues_[ch].full();
}

bool
MemoryController::enqueue(unsigned source, Addr addr, bool is_write,
                          Cycles now)
{
    PCCS_ASSERT(source < Scheduler::maxSources,
                "source id %u exceeds the %u-source limit", source,
                Scheduler::maxSources);
    Request req;
    req.id = nextId_++;
    req.source = source;
    req.isWrite = is_write;
    req.addr = addr;
    req.loc = mapper_.decode(addr);
    req.arrival = now;

    auto &queue = queues_[req.loc.channel];
    if (queue.full())
        return false;
    const int slot = queue.push_back(req);
    const Bank &bank = channels_[req.loc.channel].bank(req.loc.bank);
    if (bank.openRow() == static_cast<std::int64_t>(req.loc.row)) {
        ++rowHitPending_[req.loc.channel * cfg_.banksPerChannel +
                         req.loc.bank];
    }
    if (lazyChannels_) {
        Cycles &wake = channelWake_[req.loc.channel];
        if (purePick_ && queue.size() > 1) {
            // The cached bound stays valid for the requests it was
            // computed over (enqueues change no bank state); only the
            // newcomer can move the channel's first legality earlier.
            wake = std::min(wake, requestIssueBound(req, now));
        } else {
            // First request on an idle channel (a refresh may have
            // come due while the queue was empty), or a rebatching
            // policy (SMS): force a full evaluation next cycle.
            wake = 0;
        }
    }
    scheduler_->onEnqueue(queue.slot(slot));
    return true;
}

bool
MemoryController::tick(Cycles now)
{
    scheduler_->tick(now);
    bool active = drainCompletions(now);
    for (unsigned ch = 0; ch < cfg_.channels; ++ch) {
        if (queues_[ch].empty())
            continue;
        if (lazyChannels_) {
            // Quiet channel: its cached wake bound proves this
            // evaluation would come up empty, so skip rebuilding the
            // scheduler view (the dominant per-cycle cost at load).
            if (now < channelWake_[ch])
                continue;
            active |= scheduleChannel(ch, now, &channelWake_[ch]);
        } else {
            active |= scheduleChannel(ch, now);
        }
    }
    return active;
}

bool
MemoryController::drainCompletions(Cycles now)
{
    bool drained = false;
    while (!inflight_.empty() && inflight_.top().completion <= now) {
        const Request req = inflight_.top().req;
        inflight_.pop();
        stats_.totalLatency += req.completion - req.arrival;
        ++stats_.completed;
        ++stats_.completedPerSource[req.source];
        if (onComplete_)
            onComplete_(req);
        drained = true;
    }
    return drained;
}

MemoryController::RefreshOutcome
MemoryController::handleRefresh(unsigned ch, Cycles now)
{
    ChannelTiming &timing = channels_[ch];
    if (now < refreshUntil_[ch])
        return RefreshOutcome::Busy; // refresh in progress: blocked
    if (now < nextRefresh_[ch])
        return RefreshOutcome::NotDue;

    // Refresh due: close every open row, then hold the channel for
    // tRFC. Precharges obey their bank timing (one per command slot).
    for (unsigned b = 0; b < timing.numBanks(); ++b) {
        Bank &bank = timing.bank(b);
        if (bank.openRow() == Bank::noRow)
            continue;
        if (bank.canPrecharge(now)) {
            bank.precharge(now, cfg_.timing);
            rowHitPending_[ch * cfg_.banksPerChannel + b] = 0;
            return RefreshOutcome::Progressed;
        }
        return RefreshOutcome::Busy; // must wait for this PRE
    }
    refreshUntil_[ch] = now + cfg_.timing.tRFC;
    // No catch-up storms after idle stretches: refresh debt from
    // periods without traffic is irrelevant to bandwidth accounting.
    nextRefresh_[ch] =
        std::max(nextRefresh_[ch] + cfg_.timing.tREFI, now + 1);
    ++stats_.refreshes;
    return RefreshOutcome::Progressed;
}

void
MemoryController::recountRowHits(unsigned ch, unsigned bank)
{
    const Bank &b = channels_[ch].bank(bank);
    std::uint32_t count = 0;
    if (b.openRow() != Bank::noRow) {
        for (const Request &r : queues_[ch]) {
            if (r.loc.bank == bank &&
                b.openRow() == static_cast<std::int64_t>(r.loc.row)) {
                ++count;
            }
        }
    }
    rowHitPending_[ch * cfg_.banksPerChannel + bank] = count;
}

bool
MemoryController::scheduleChannel(unsigned ch, Cycles now, Cycles *wake)
{
    switch (handleRefresh(ch, now)) {
    case RefreshOutcome::NotDue:
        break;
    case RefreshOutcome::Busy:
        // Refresh head only (running refresh or a PRE-drain wait): no
        // queue scan happens inside channelNextEvent on this path.
        if (wake)
            *wake = channelNextEvent(ch, now);
        return false;
    case RefreshOutcome::Progressed:
        if (wake)
            *wake = now + 1; // the PRE-drain / refresh chain continues
        return true;
    }

    ChannelTiming &timing = channels_[ch];
    RequestQueue &queue = queues_[ch];

    // Row-hit preservation: a bank whose open row still has pending
    // requests must not be precharged for a conflicting request --
    // otherwise a PRE slips into the cycles between data bursts and
    // destroys every row chain (all policies would degenerate to
    // conflict-per-access behavior). The mask used to be rebuilt here
    // with a queue scan every cycle; it is now maintained
    // incrementally on enqueue/CAS/PRE/ACT (rowHitPending_).
    const std::uint32_t pending_hits =
        scheduler_->preservesRowHits() ? pendingRowHitMask(ch) : 0;

    // Build the scheduler's view: for each request, the cycle its
    // *next needed command* (CAS for an open matching row, otherwise
    // PRE or ACT) first becomes legal; issuable means that cycle has
    // arrived. The legality cycles double as the wake-bound input for
    // the lazy scan, so no second queue scan is ever needed. The bank
    // accessors are exact (canX(now) == now >= nextXAt), so this is
    // the same predicate the per-cycle reference loop evaluates.
    scratchEntries_.clear();
    scratchEntries_.reserve(queue.size());
    scratchSlots_.clear();
    scratchSlots_.reserve(queue.size());
    const Cycles rank_ready = timing.rankActivateReadyAt();
    const Cycles bus_ready_rd = timing.busReadyAt(false);
    const Cycles bus_ready_wr = timing.busReadyAt(true);
    unsigned ready_hit = 0;    // issuable row-hit (CAS) entries
    unsigned ready_other = 0;  // issuable PRE/ACT entries
    Cycles future = kNoEvent;  // earliest not-yet-legal entry
    std::uint32_t masked_banks = 0; // banks with a masked conflict PRE
    for (int s = queue.head(); s >= 0; s = queue.next(s)) {
        const Request &r = queue.slot(s);
        const Bank &bank = timing.bank(r.loc.bank);
        QueueEntryView e;
        e.req = &r;
        e.rowHit =
            bank.openRow() == static_cast<std::int64_t>(r.loc.row);
        Cycles t;
        if (e.rowHit) {
            t = std::max(bank.nextAccessAt(),
                         r.isWrite ? bus_ready_wr : bus_ready_rd);
        } else if (bank.openRow() != Bank::noRow) {
            // A conflicting PRE stays masked until the open row's
            // pending hits drain; draining is in-channel activity,
            // which recomputes this channel's wake anyway.
            if (pending_hits & (1u << r.loc.bank)) {
                masked_banks |= 1u << r.loc.bank;
                t = kNoEvent;
            } else {
                t = bank.nextPrechargeAt();
            }
        } else {
            t = std::max(bank.nextActivateAt(), rank_ready);
        }
        e.issuable = t <= now;
        if (e.issuable)
            ++(e.rowHit ? ready_hit : ready_other);
        else
            future = std::min(future, t);
        scratchEntries_.push_back(e);
        scratchSlots_.push_back(s);
    }

    const int idx = scheduler_->pick(ch, scratchEntries_, now);
    if (idx < 0) {
        if (wake) {
            // An issuable entry the policy declined (FCFS's in-order
            // window) forces per-cycle stepping, as in the reference.
            *wake = (ready_hit + ready_other)
                        ? now + 1
                        : std::max(std::min(future, nextRefresh_[ch]),
                                   now + 1);
        }
        return false;
    }
    PCCS_ASSERT(static_cast<std::size_t>(idx) < scratchEntries_.size() &&
                    scratchEntries_[idx].issuable,
                "scheduler picked a non-issuable entry %d", idx);

    const int slot = scratchSlots_[idx];
    Request &req = queue.slot(slot);
    Bank &bank = timing.bank(req.loc.bank);

    // Post-command legality of the *chosen* request's next command
    // (kNoEvent for a CAS: the request leaves the queue). Every other
    // entry's pre-command bound in `future` can only be pushed later
    // by the command, so reusing it wakes at worst early (a no-op
    // evaluation that recomputes a fresh bound), never late.
    Cycles own = kNoEvent;

    if (scratchEntries_[idx].rowHit) {
        // CAS: the request completes after CL + burst.
        const Cycles done = bank.access(now, req.isWrite, cfg_.timing);
        timing.reserveBus(now, req.isWrite);
        req.casIssued = now;
        req.completion = done;
        if (req.neededActivate)
            ++stats_.rowMisses;
        else
            ++stats_.rowHits;
        if (req.isWrite)
            ++stats_.writes;
        else
            ++stats_.reads;
        stats_.bytesTransferred += cfg_.lineBytes;
        stats_.bytesPerSource[req.source] += cfg_.lineBytes;
        scheduler_->onService(req, now, cfg_.lineBytes);
        inflight_.push(Inflight{done, req});
        std::uint32_t &hits =
            rowHitPending_[ch * cfg_.banksPerChannel + req.loc.bank];
        PCCS_ASSERT(hits > 0, "row-hit counter underflow");
        --hits;
        // This CAS may have drained the open row's last pending hit,
        // unmasking a conflicting PRE that the build loop excluded
        // from `future`; its legality (post-CAS: access() pushed
        // nextPre_) must bound the wake or the PRE would issue late.
        if (hits == 0 && (masked_banks & (1u << req.loc.bank)))
            own = bank.nextPrechargeAt();
        queue.erase(slot);
    } else if (bank.openRow() != Bank::noRow) {
        // Row conflict: close the current row first.
        bank.precharge(now, cfg_.timing);
        rowHitPending_[ch * cfg_.banksPerChannel + req.loc.bank] = 0;
        own = std::max(bank.nextActivateAt(),
                       timing.rankActivateReadyAt());
    } else {
        // Row closed: open the request's row. Every request served
        // after this ACT without another ACT counts as a row hit;
        // this one is charged as a miss via neededActivate.
        bank.activate(now, req.loc.row, cfg_.timing);
        timing.recordActivate(now);
        req.neededActivate = true;
        recountRowHits(ch, req.loc.bank);
        own = std::max(bank.nextAccessAt(),
                       timing.busReadyAt(req.isWrite));
    }
    if (wake) {
        if (!purePick_) {
            // SMS must re-pick right after any queue change.
            *wake = now + 1;
        } else {
            Cycles w = std::min({future, own, nextRefresh_[ch]});
            if (scratchEntries_[idx].rowHit) {
                // A CAS only delays other row hits through the data
                // bus, which it just reserved: none of them can be
                // legal again before busReadyAt (exactly now + tBURST;
                // reads possibly later still). Pending PRE/ACT work is
                // untouched by the bus and can issue next cycle.
                if (ready_other > 0)
                    w = now + 1;
                else if (ready_hit > 1)
                    w = std::min(w, timing.busReadyAt(true));
            } else if (ready_hit + ready_other > 1) {
                // A PRE/ACT leaves every other issuable entry legal.
                w = now + 1;
            }
            *wake = std::max(w, now + 1);
        }
    }
    return true;
}

Cycles
MemoryController::requestIssueBound(const Request &r, Cycles now) const
{
    const ChannelTiming &timing = channels_[r.loc.channel];
    const Bank &bank = timing.bank(r.loc.bank);
    Cycles t;
    if (bank.openRow() == static_cast<std::int64_t>(r.loc.row)) {
        t = std::max(bank.nextAccessAt(), timing.busReadyAt(r.isWrite));
    } else if (bank.openRow() != Bank::noRow) {
        // A conflicting PRE stays masked while the open row has
        // pending hits; draining them is activity, which recomputes
        // the channel's wake anyway.
        if (scheduler_->preservesRowHits() &&
            rowHitPending_[r.loc.channel * cfg_.banksPerChannel +
                           r.loc.bank] > 0) {
            return kNoEvent;
        }
        t = bank.nextPrechargeAt();
    } else {
        t = std::max(bank.nextActivateAt(),
                     timing.rankActivateReadyAt());
    }
    return std::max(t, now + 1);
}

Cycles
MemoryController::channelNextEvent(unsigned ch, Cycles now) const
{
    const Cycles next = now + 1;

    // A running refresh blocks everything until it completes.
    if (refreshUntil_[ch] > next)
        return refreshUntil_[ch];

    // A due (or about-to-be-due) refresh drains open rows one PRE per
    // cycle; the next step happens when the first open bank's PRE
    // becomes legal.
    if (nextRefresh_[ch] <= next) {
        const ChannelTiming &timing = channels_[ch];
        for (unsigned b = 0; b < timing.numBanks(); ++b) {
            const Bank &bank = timing.bank(b);
            if (bank.openRow() == Bank::noRow)
                continue;
            return std::max(next, bank.nextPrechargeAt());
        }
        return next; // all banks closed: refresh starts next tick
    }

    // Normal scheduling: the earliest cycle any queued request's next
    // command becomes legal, or the refresh deadline, whichever first.
    // These are conservative lower bounds (issuing a command only
    // pushes legality later, and any command issue wakes the core at
    // now + 1 anyway), so no first-legality edge is ever skipped.
    const ChannelTiming &timing = channels_[ch];
    const bool preserve = scheduler_->preservesRowHits();
    Cycles cand = nextRefresh_[ch];
    for (const Request &r : queues_[ch]) {
        const Bank &bank = timing.bank(r.loc.bank);
        Cycles t;
        if (bank.openRow() == static_cast<std::int64_t>(r.loc.row)) {
            t = std::max(bank.nextAccessAt(),
                         timing.busReadyAt(r.isWrite));
        } else if (bank.openRow() != Bank::noRow) {
            // A conflicting PRE stays masked until the pending row
            // hits drain; draining is activity, which wakes the core.
            if (preserve &&
                rowHitPending_[ch * cfg_.banksPerChannel + r.loc.bank] >
                    0) {
                continue;
            }
            t = bank.nextPrechargeAt();
        } else {
            t = std::max(bank.nextActivateAt(),
                         timing.rankActivateReadyAt());
        }
        cand = std::min(cand, t);
    }
    return std::max(cand, next);
}

Cycles
MemoryController::nextEventCycle(Cycles now) const
{
    Cycles best = kNoEvent;
    if (!inflight_.empty())
        best = std::max(inflight_.top().completion, now + 1);
    // Scheduler tick events (ATLAS/TCM quantum and shuffle boundaries)
    // mutate scheduler state even on otherwise-idle cycles; their
    // rearm chains must advance exactly as in the reference loop.
    const Cycles sched = scheduler_->nextTickEvent();
    if (sched != kNoEvent)
        best = std::min(best, std::max(sched, now + 1));
    for (unsigned ch = 0; ch < cfg_.channels; ++ch) {
        // Empty channels are lazy, exactly like the reference loop:
        // scheduleChannel (and with it refresh progress) only runs for
        // channels with queued requests.
        if (queues_[ch].empty())
            continue;
        if (lazyChannels_ && channelWake_[ch] > now)
            best = std::min(best, channelWake_[ch]);
        else
            best = std::min(best, channelNextEvent(ch, now));
    }
    return best;
}

void
ControllerStats::print(std::ostream &os, const std::string &prefix) const
{
    auto stat = [&](const char *name, double value, const char *desc) {
        os << prefix << "." << name << " " << value << " # " << desc
           << "\n";
    };
    stat("reads", static_cast<double>(reads), "read CAS commands");
    stat("writes", static_cast<double>(writes), "write CAS commands");
    stat("rowHits", static_cast<double>(rowHits),
         "CAS served from an open row");
    stat("rowMisses", static_cast<double>(rowMisses),
         "CAS that required an ACT");
    stat("rowBufferHitRate", rowBufferHitRate(),
         "row-buffer hit rate [0,1]");
    stat("refreshes", static_cast<double>(refreshes),
         "all-bank refresh operations");
    stat("bytesTransferred", static_cast<double>(bytesTransferred),
         "total data moved, bytes");
    stat("completed", static_cast<double>(completed),
         "completed requests");
    stat("avgLatency", averageLatency(),
         "mean request latency, cycles");
}

std::size_t
MemoryController::pendingRequests() const
{
    std::size_t n = inflight_.size();
    for (const auto &q : queues_)
        n += q.size();
    return n;
}

double
MemoryController::effectiveBandwidthFraction(Cycles cycles) const
{
    if (cycles == 0)
        return 0.0;
    const double peak_bytes =
        static_cast<double>(cycles) * cfg_.channels *
        cfg_.bytesPerCyclePerChannel();
    return static_cast<double>(stats_.bytesTransferred) / peak_bytes;
}

} // namespace pccs::dram
