#include "controller.hh"

#include <algorithm>
#include <bit>
#include <ostream>

#include "common/logging.hh"
#include "dram/run_mode.hh"

namespace pccs::dram {

MemoryController::MemoryController(const DramConfig &cfg,
                                   std::unique_ptr<Scheduler> scheduler)
    : cfg_(cfg), mapper_(cfg), scheduler_(std::move(scheduler))
{
    PCCS_ASSERT(scheduler_ != nullptr, "controller needs a scheduler");
    PCCS_ASSERT(cfg_.banksPerChannel <= 32,
                "row-hit preservation bitmask supports <= 32 banks");
    purePick_ = scheduler_->pickIsPure();
    fastEnabled_ = dramFastPathEnabled();
    fastEligible_ = scheduler_->fastPickEligible();
    channels_.reserve(cfg_.channels);
    queues_.reserve(cfg_.channels);
    for (unsigned c = 0; c < cfg_.channels; ++c) {
        channels_.emplace_back(cfg_.banksPerChannel, cfg_.timing);
        queues_.emplace_back(cfg_.queuePerChannel(),
                             cfg_.banksPerChannel);
    }
    // The gather path must never reallocate mid-run: a queue holds at
    // most queuePerChannel() requests, so one up-front reservation
    // covers every evaluation (scratchReallocations() stays 0).
    scratchEntries_.reserve(cfg_.queuePerChannel());
    scratchSlots_.reserve(cfg_.queuePerChannel());
    nextRefresh_.assign(cfg_.channels, cfg_.timing.tREFI);
    refreshUntil_.assign(cfg_.channels, 0);
    channelWake_.assign(cfg_.channels, 0);
}

void
MemoryController::setLazyChannelScan(bool on)
{
    // The cache is only maintained while lazy scanning is on; entries
    // from a previous lazy phase are stale after a non-lazy interlude.
    if (on && !lazyChannels_)
        std::fill(channelWake_.begin(), channelWake_.end(), Cycles{0});
    lazyChannels_ = on;
}

bool
MemoryController::canAccept(Addr addr) const
{
    const unsigned ch = mapper_.decode(addr).channel;
    return !queues_[ch].full();
}

bool
MemoryController::enqueue(unsigned source, Addr addr, bool is_write,
                          Cycles now)
{
    PCCS_ASSERT(source < Scheduler::maxSources,
                "source id %u exceeds the %u-source limit", source,
                Scheduler::maxSources);
    Request req;
    req.id = nextId_++;
    req.source = source;
    req.isWrite = is_write;
    req.addr = addr;
    req.loc = mapper_.decode(addr);
    req.arrival = now;

    auto &queue = queues_[req.loc.channel];
    if (queue.full())
        return false;
    const Bank &bank = channels_[req.loc.channel].bank(req.loc.bank);
    const bool row_hit =
        bank.openRow() == static_cast<std::int64_t>(req.loc.row);
    const int slot = queue.push_back(req, row_hit);
    if (lazyChannels_) {
        Cycles &wake = channelWake_[req.loc.channel];
        if (purePick_ && queue.size() > 1) {
            // The cached bound stays valid for the requests it was
            // computed over (enqueues change no bank state); only the
            // newcomer can move the channel's first legality earlier.
            wake = std::min(wake, requestIssueBound(req, now));
        } else {
            // First request on an idle channel (a refresh may have
            // come due while the queue was empty), or a rebatching
            // policy (SMS): force a full evaluation next cycle.
            wake = 0;
        }
    }
    scheduler_->onEnqueue(queue.slot(slot));
    return true;
}

bool
MemoryController::tick(Cycles now)
{
    scheduler_->tick(now);
    bool active = drainCompletions(now);
    for (unsigned ch = 0; ch < cfg_.channels; ++ch) {
        if (queues_[ch].empty())
            continue;
        if (lazyChannels_) {
            // Quiet channel: its cached wake bound proves this
            // evaluation would come up empty, so skip rebuilding the
            // scheduler view (the dominant per-cycle cost at load).
            if (now < channelWake_[ch])
                continue;
            active |= scheduleChannel(ch, now, &channelWake_[ch]);
        } else {
            active |= scheduleChannel(ch, now);
        }
    }
    return active;
}

bool
MemoryController::drainCompletions(Cycles now)
{
    bool drained = false;
    while (!inflight_.empty() && inflight_.top().completion <= now) {
        const Request req = inflight_.top().req;
        inflight_.pop();
        stats_.totalLatency += req.completion - req.arrival;
        ++stats_.completed;
        ++stats_.completedPerSource[req.source];
        if (onComplete_)
            onComplete_(req);
        drained = true;
    }
    return drained;
}

int
MemoryController::firstReadyBank(unsigned ch, Cycles now,
                                 Cycles *pre_at) const
{
    const ChannelTiming &timing = channels_[ch];
    const int b = timing.firstOpenBank();
    if (b >= 0 && pre_at)
        *pre_at = std::max(timing.bank(b).nextPrechargeAt(), now);
    return b;
}

MemoryController::RefreshOutcome
MemoryController::handleRefresh(unsigned ch, Cycles now)
{
    if (now < refreshUntil_[ch])
        return RefreshOutcome::Busy; // refresh in progress: blocked
    if (now < nextRefresh_[ch])
        return RefreshOutcome::NotDue;

    // Refresh due: close every open row, then hold the channel for
    // tRFC. Precharges obey their bank timing (one per command slot).
    Cycles pre_at = 0;
    const int b = firstReadyBank(ch, now, &pre_at);
    if (b >= 0) {
        if (pre_at > now)
            return RefreshOutcome::Busy; // must wait for this PRE
        channels_[ch].prechargeBank(static_cast<unsigned>(b), now);
        queues_[ch].clearHits(static_cast<unsigned>(b));
        return RefreshOutcome::Progressed;
    }
    refreshUntil_[ch] = now + cfg_.timing.tRFC;
    // No catch-up storms after idle stretches: refresh debt from
    // periods without traffic is irrelevant to bandwidth accounting.
    nextRefresh_[ch] =
        std::max(nextRefresh_[ch] + cfg_.timing.tREFI, now + 1);
    ++stats_.refreshes;
    return RefreshOutcome::Progressed;
}

bool
MemoryController::scheduleChannel(unsigned ch, Cycles now, Cycles *wake)
{
    switch (handleRefresh(ch, now)) {
    case RefreshOutcome::NotDue:
        break;
    case RefreshOutcome::Busy:
        // Refresh head only (running refresh or a PRE-drain wait): no
        // queue scan happens inside channelNextEvent on this path.
        if (wake)
            *wake = channelNextEvent(ch, now);
        return false;
    case RefreshOutcome::Progressed:
        if (wake)
            *wake = now + 1; // the PRE-drain / refresh chain continues
        return true;
    }

    // The fast issue engine serves the lazy (event-driven) scan for
    // eligible policies; the reference core (wake == nullptr) always
    // takes the materialized path — it is the executable
    // specification the fast engine is measured and verified against.
    if (wake && fastEnabled_ && fastEligible_)
        return scheduleChannelFast(ch, now, wake);
    return scheduleChannelSlow(ch, now, wake);
}

bool
MemoryController::scheduleChannelSlow(unsigned ch, Cycles now,
                                      Cycles *wake)
{
    ChannelTiming &timing = channels_[ch];
    RequestQueue &queue = queues_[ch];

    // Row-hit preservation: a bank whose open row still has pending
    // requests must not be precharged for a conflicting request --
    // otherwise a PRE slips into the cycles between data bursts and
    // destroys every row chain (all policies would degenerate to
    // conflict-per-access behavior). The mask used to be rebuilt here
    // with a queue scan every cycle; it is now maintained
    // incrementally by the queue's per-bank hit lists.
    const std::uint32_t pending_hits =
        scheduler_->preservesRowHits() ? pendingRowHitMask(ch) : 0;

    // Build the scheduler's view: for each request, the cycle its
    // *next needed command* (CAS for an open matching row, otherwise
    // PRE or ACT) first becomes legal; issuable means that cycle has
    // arrived. The legality cycles double as the wake-bound input for
    // the lazy scan, so no second queue scan is ever needed. The bank
    // accessors are exact (canX(now) == now >= nextXAt), so this is
    // the same predicate the per-cycle reference loop evaluates.
    const std::size_t scratch_cap = scratchEntries_.capacity();
    scratchEntries_.clear();
    scratchSlots_.clear();
    const Cycles rank_ready = timing.rankActivateReadyAt();
    const Cycles bus_ready_rd = timing.busReadyAt(false);
    const Cycles bus_ready_wr = timing.busReadyAt(true);
    unsigned ready_hit = 0;    // issuable row-hit (CAS) entries
    unsigned ready_other = 0;  // issuable PRE/ACT entries
    Cycles future = kNoEvent;  // earliest not-yet-legal entry
    std::uint32_t masked_banks = 0; // banks with a masked conflict PRE
    for (int s = queue.head(); s >= 0; s = queue.next(s)) {
        const Request &r = queue.slot(s);
        const Bank &bank = timing.bank(r.loc.bank);
        QueueEntryView e;
        e.req = &r;
        e.rowHit =
            bank.openRow() == static_cast<std::int64_t>(r.loc.row);
        Cycles t;
        if (e.rowHit) {
            t = std::max(bank.nextAccessAt(),
                         r.isWrite ? bus_ready_wr : bus_ready_rd);
        } else if (bank.openRow() != Bank::noRow) {
            // A conflicting PRE stays masked until the open row's
            // pending hits drain; draining is in-channel activity,
            // which recomputes this channel's wake anyway.
            if (pending_hits & (1u << r.loc.bank)) {
                masked_banks |= 1u << r.loc.bank;
                t = kNoEvent;
            } else {
                t = bank.nextPrechargeAt();
            }
        } else {
            t = std::max(bank.nextActivateAt(), rank_ready);
        }
        e.issuable = t <= now;
        if (e.issuable)
            ++(e.rowHit ? ready_hit : ready_other);
        else
            future = std::min(future, t);
        scratchEntries_.push_back(e);
        scratchSlots_.push_back(s);
    }
    if (scratchEntries_.capacity() != scratch_cap)
        ++scratchReallocs_;
    PCCS_ASSERT(scratchReallocs_ == 0,
                "scheduler-view gather reallocated mid-run");

    const int idx = scheduler_->pick(ch, scratchEntries_, now);
    if (idx < 0) {
        if (wake) {
            // An issuable entry the policy declined (FCFS's in-order
            // window) forces per-cycle stepping, as in the reference.
            *wake = (ready_hit + ready_other)
                        ? now + 1
                        : std::max(std::min(future, nextRefresh_[ch]),
                                   now + 1);
        }
        return false;
    }
    PCCS_ASSERT(static_cast<std::size_t>(idx) < scratchEntries_.size() &&
                    scratchEntries_[idx].issuable,
                "scheduler picked a non-issuable entry %d", idx);

    const bool row_hit = scratchEntries_[idx].rowHit;
    const Cycles own = issueCommand(ch, scratchSlots_[idx], row_hit,
                                    now, masked_banks);
    if (wake) {
        *wake = issuedWakeBound(ch, row_hit, ready_hit, ready_other,
                                future, own, now);
    }
    return true;
}

Cycles
MemoryController::issueCommand(unsigned ch, int slot, bool row_hit,
                               Cycles now, std::uint64_t masked_banks)
{
    ChannelTiming &timing = channels_[ch];
    RequestQueue &queue = queues_[ch];
    Request &req = queue.slot(slot);
    const unsigned b = req.loc.bank;

    // Post-command legality of the *chosen* request's next command
    // (kNoEvent for a CAS: the request leaves the queue). Every other
    // entry's pre-command bound in the caller's `future` can only be
    // pushed later by the command, so reusing it wakes at worst early
    // (a no-op evaluation that recomputes a fresh bound), never late.
    Cycles own = kNoEvent;

    if (row_hit) {
        // CAS: the request completes after CL + burst.
        PCCS_ASSERT(queue.isHit(slot), "row-hit CAS for a non-hit slot");
        const Cycles done = timing.accessBank(b, now, req.isWrite);
        timing.reserveBus(now, req.isWrite);
        req.casIssued = now;
        req.completion = done;
        if (req.neededActivate)
            ++stats_.rowMisses;
        else
            ++stats_.rowHits;
        if (req.isWrite)
            ++stats_.writes;
        else
            ++stats_.reads;
        stats_.bytesTransferred += cfg_.lineBytes;
        stats_.bytesPerSource[req.source] += cfg_.lineBytes;
        scheduler_->onService(req, now, cfg_.lineBytes);
        inflight_.push(Inflight{done, req});
        queue.erase(slot); // unlinks the bank and hit lists too
        // This CAS may have drained the open row's last pending hit,
        // unmasking a conflicting PRE that the build loop excluded
        // from `future`; its legality (post-CAS: access() pushed
        // nextPre_) must bound the wake or the PRE would issue late.
        if (queue.hitCount(b) == 0 &&
            (masked_banks & (std::uint64_t{1} << b))) {
            own = timing.bank(b).nextPrechargeAt();
        }
    } else if (timing.bank(b).openRow() != Bank::noRow) {
        // Row conflict: close the current row first.
        timing.prechargeBank(b, now);
        queue.clearHits(b);
        own = std::max(timing.bank(b).nextActivateAt(),
                       timing.rankActivateReadyAt());
    } else {
        // Row closed: open the request's row. Every request served
        // after this ACT without another ACT counts as a row hit;
        // this one is charged as a miss via neededActivate.
        timing.activateBank(b, now, req.loc.row);
        timing.recordActivate(now);
        req.neededActivate = true;
        queue.rebuildHits(b, req.loc.row);
        own = std::max(timing.bank(b).nextAccessAt(),
                       timing.busReadyAt(req.isWrite));
    }
    return own;
}

Cycles
MemoryController::issuedWakeBound(unsigned ch, bool row_hit,
                                  unsigned ready_hit,
                                  unsigned ready_other, Cycles future,
                                  Cycles own, Cycles now) const
{
    if (!purePick_) {
        // SMS must re-pick right after any queue change.
        return now + 1;
    }
    Cycles w = std::min({future, own, nextRefresh_[ch]});
    if (row_hit) {
        // A CAS only delays other row hits through the data bus,
        // which it just reserved: none of them can be legal again
        // before busReadyAt (exactly now + tBURST; reads possibly
        // later still). Pending PRE/ACT work is untouched by the bus
        // and can issue next cycle.
        if (ready_other > 0)
            w = now + 1;
        else if (ready_hit > 1)
            w = std::min(w, channels_[ch].busReadyAt(true));
    } else if (ready_hit + ready_other > 1) {
        // A PRE/ACT leaves every other issuable entry legal.
        w = now + 1;
    }
    return std::max(w, now + 1);
}

bool
MemoryController::scheduleChannelFast(unsigned ch, Cycles now,
                                      Cycles *wake)
{
    ChannelTiming &timing = channels_[ch];
    RequestQueue &queue = queues_[ch];
    const bool preserve = scheduler_->preservesRowHits();

    // Classify each occupied bank once: every candidate class of a
    // bank shares one legality bound (read hits: CAS + read bus;
    // write hits: CAS + write bus; conflicts: PRE; closed: ACT + rank
    // windows), so the per-entry walk of the materialized path
    // collapses to an O(occupied banks) mask build over the queue's
    // incrementally maintained candidate lists. The counts and
    // `future` reproduce the materialized path's values exactly —
    // they feed the same wake-bound formulas.
    FastIssueView v;
    v.queue = &queue;
    v.numBanks = cfg_.banksPerChannel;
    v.openRowMask = timing.openRowMask();
    const Cycles rank_ready = timing.rankActivateReadyAt();
    const Cycles bus_ready_rd = timing.busReadyAt(false);
    const Cycles bus_ready_wr = timing.busReadyAt(true);
    unsigned ready_hit = 0;    // issuable row-hit (CAS) entries
    unsigned ready_other = 0;  // issuable PRE/ACT entries
    Cycles future = kNoEvent;  // earliest not-yet-legal entry
    std::uint64_t masked_banks = 0; // banks with a masked conflict PRE
    for (std::uint64_t m = queue.occupiedMask(); m; m &= m - 1) {
        const unsigned b =
            static_cast<unsigned>(std::countr_zero(m));
        const std::uint64_t bit = std::uint64_t{1} << b;
        const Bank &bank = timing.bank(b);
        if (v.openRowMask & bit) {
            const unsigned nrd = queue.hitCountRead(b);
            const unsigned nwr = queue.hitCountWrite(b);
            if (nrd) {
                const Cycles t =
                    std::max(bank.nextAccessAt(), bus_ready_rd);
                if (t <= now) {
                    v.hitReadMask |= bit;
                    ready_hit += nrd;
                } else {
                    future = std::min(future, t);
                }
            }
            if (nwr) {
                const Cycles t =
                    std::max(bank.nextAccessAt(), bus_ready_wr);
                if (t <= now) {
                    v.hitWriteMask |= bit;
                    ready_hit += nwr;
                } else {
                    future = std::min(future, t);
                }
            }
            const unsigned conflicts = queue.bankCount(b) - nrd - nwr;
            if (conflicts) {
                if (preserve && (nrd + nwr)) {
                    masked_banks |= bit;
                } else {
                    const Cycles t = bank.nextPrechargeAt();
                    if (t <= now) {
                        v.preMask |= bit;
                        ready_other += conflicts;
                    } else {
                        future = std::min(future, t);
                    }
                }
            }
        } else {
            const Cycles t =
                std::max(bank.nextActivateAt(), rank_ready);
            if (t <= now) {
                v.actMask |= bit;
                ready_other += queue.bankCount(b);
            } else {
                future = std::min(future, t);
            }
        }
    }

    int slot = -1;
    bool row_hit = false;
    // Impure policies (SMS/PARBS) mutate state inside pick() on
    // no-issuable evaluations too (rebatch checks, RNG); their
    // fastPick must run on exactly the cycles the lazy materialized
    // path would call pick(), which is every evaluated cycle.
    if (ready_hit + ready_other || !purePick_) {
        const int r = scheduler_->fastPick(v, ch, now);
        if (r == Scheduler::kFastPickFallback) {
            // Policy state the masks cannot express (e.g. a starved
            // ATLAS entry): materialize the full entry list.
            return scheduleChannelSlow(ch, now, wake);
        }
        slot = r;
        if (slot >= 0) {
            row_hit = queue.isHit(slot);
            PCCS_ASSERT(v.slotIssuable(slot),
                        "fast pick chose a non-issuable slot %d", slot);
        }
    }
    if (slot < 0) {
        // Same wake rule as the materialized path: a declined
        // issuable entry (FCFS's window) forces per-cycle stepping.
        *wake = (ready_hit + ready_other)
                    ? now + 1
                    : std::max(std::min(future, nextRefresh_[ch]),
                               now + 1);
        return false;
    }

    const Cycles own = issueCommand(ch, slot, row_hit, now, masked_banks);
    *wake = issuedWakeBound(ch, row_hit, ready_hit, ready_other, future,
                            own, now);
    return true;
}

Cycles
MemoryController::requestIssueBound(const Request &r, Cycles now) const
{
    const ChannelTiming &timing = channels_[r.loc.channel];
    const Bank &bank = timing.bank(r.loc.bank);
    Cycles t;
    if (bank.openRow() == static_cast<std::int64_t>(r.loc.row)) {
        t = std::max(bank.nextAccessAt(), timing.busReadyAt(r.isWrite));
    } else if (bank.openRow() != Bank::noRow) {
        // A conflicting PRE stays masked while the open row has
        // pending hits; draining them is activity, which recomputes
        // the channel's wake anyway.
        if (scheduler_->preservesRowHits() &&
            queues_[r.loc.channel].hitCount(r.loc.bank) > 0) {
            return kNoEvent;
        }
        t = bank.nextPrechargeAt();
    } else {
        t = std::max(bank.nextActivateAt(),
                     timing.rankActivateReadyAt());
    }
    return std::max(t, now + 1);
}

Cycles
MemoryController::channelNextEvent(unsigned ch, Cycles now) const
{
    const Cycles next = now + 1;

    // A running refresh blocks everything until it completes.
    if (refreshUntil_[ch] > next)
        return refreshUntil_[ch];

    // A due (or about-to-be-due) refresh drains open rows one PRE per
    // cycle; the next step happens when the first open bank's PRE
    // becomes legal.
    if (nextRefresh_[ch] <= next) {
        Cycles pre_at = 0;
        if (firstReadyBank(ch, now, &pre_at) < 0)
            return next; // all banks closed: refresh starts next tick
        return std::max(next, pre_at);
    }

    if (fastEnabled_)
        return channelNextEventFast(ch, now);

    // Normal scheduling: the earliest cycle any queued request's next
    // command becomes legal, or the refresh deadline, whichever first.
    // These are conservative lower bounds (issuing a command only
    // pushes legality later, and any command issue wakes the core at
    // now + 1 anyway), so no first-legality edge is ever skipped.
    const ChannelTiming &timing = channels_[ch];
    const bool preserve = scheduler_->preservesRowHits();
    Cycles cand = nextRefresh_[ch];
    for (const Request &r : queues_[ch]) {
        const Bank &bank = timing.bank(r.loc.bank);
        Cycles t;
        if (bank.openRow() == static_cast<std::int64_t>(r.loc.row)) {
            t = std::max(bank.nextAccessAt(),
                         timing.busReadyAt(r.isWrite));
        } else if (bank.openRow() != Bank::noRow) {
            // A conflicting PRE stays masked until the pending row
            // hits drain; draining is activity, which wakes the core.
            if (preserve && queues_[ch].hitCount(r.loc.bank) > 0)
                continue;
            t = bank.nextPrechargeAt();
        } else {
            t = std::max(bank.nextActivateAt(),
                         timing.rankActivateReadyAt());
        }
        cand = std::min(cand, t);
    }
    return std::max(cand, next);
}

Cycles
MemoryController::channelNextEventFast(unsigned ch, Cycles now) const
{
    // The bank-mask form of the queue walk above: per occupied bank,
    // each candidate class shares one legality bound, so the min over
    // entries equals the min over the (bank, class) pairs — valid for
    // every policy (the bound depends only on bank state and the
    // request's bank/row/direction, all mirrored in the queue's SoA).
    // Both the single-controller event loop and the multi-MC
    // event-driven/sharded loops fold this bound into their next-event
    // min-scans.
    const ChannelTiming &timing = channels_[ch];
    const RequestQueue &queue = queues_[ch];
    const bool preserve = scheduler_->preservesRowHits();
    const std::uint64_t open = timing.openRowMask();
    const Cycles rank_ready = timing.rankActivateReadyAt();
    const Cycles bus_ready_rd = timing.busReadyAt(false);
    const Cycles bus_ready_wr = timing.busReadyAt(true);
    Cycles cand = nextRefresh_[ch];
    for (std::uint64_t m = queue.occupiedMask(); m; m &= m - 1) {
        const unsigned b =
            static_cast<unsigned>(std::countr_zero(m));
        const Bank &bank = timing.bank(b);
        if (open & (std::uint64_t{1} << b)) {
            const unsigned nrd = queue.hitCountRead(b);
            const unsigned nwr = queue.hitCountWrite(b);
            if (nrd) {
                cand = std::min(
                    cand, std::max(bank.nextAccessAt(), bus_ready_rd));
            }
            if (nwr) {
                cand = std::min(
                    cand, std::max(bank.nextAccessAt(), bus_ready_wr));
            }
            if (queue.bankCount(b) - nrd - nwr &&
                !(preserve && (nrd + nwr))) {
                cand = std::min(cand, bank.nextPrechargeAt());
            }
        } else {
            cand = std::min(
                cand, std::max(bank.nextActivateAt(), rank_ready));
        }
    }
    return std::max(cand, now + 1);
}

Cycles
MemoryController::nextEventCycle(Cycles now) const
{
    Cycles best = kNoEvent;
    if (!inflight_.empty())
        best = std::max(inflight_.top().completion, now + 1);
    // Scheduler tick events (ATLAS/TCM quantum and shuffle boundaries)
    // mutate scheduler state even on otherwise-idle cycles; their
    // rearm chains must advance exactly as in the reference loop.
    const Cycles sched = scheduler_->nextTickEvent();
    if (sched != kNoEvent)
        best = std::min(best, std::max(sched, now + 1));
    for (unsigned ch = 0; ch < cfg_.channels; ++ch) {
        // Empty channels are lazy, exactly like the reference loop:
        // scheduleChannel (and with it refresh progress) only runs for
        // channels with queued requests.
        if (queues_[ch].empty())
            continue;
        if (lazyChannels_ && channelWake_[ch] > now)
            best = std::min(best, channelWake_[ch]);
        else
            best = std::min(best, channelNextEvent(ch, now));
    }
    return best;
}

void
ControllerStats::print(std::ostream &os, const std::string &prefix) const
{
    auto stat = [&](const char *name, double value, const char *desc) {
        os << prefix << "." << name << " " << value << " # " << desc
           << "\n";
    };
    stat("reads", static_cast<double>(reads), "read CAS commands");
    stat("writes", static_cast<double>(writes), "write CAS commands");
    stat("rowHits", static_cast<double>(rowHits),
         "CAS served from an open row");
    stat("rowMisses", static_cast<double>(rowMisses),
         "CAS that required an ACT");
    stat("rowBufferHitRate", rowBufferHitRate(),
         "row-buffer hit rate [0,1]");
    stat("refreshes", static_cast<double>(refreshes),
         "all-bank refresh operations");
    stat("bytesTransferred", static_cast<double>(bytesTransferred),
         "total data moved, bytes");
    stat("completed", static_cast<double>(completed),
         "completed requests");
    stat("avgLatency", averageLatency(),
         "mean request latency, cycles");
}

std::size_t
MemoryController::pendingRequests() const
{
    std::size_t n = inflight_.size();
    for (const auto &q : queues_)
        n += q.size();
    return n;
}

double
MemoryController::effectiveBandwidthFraction(Cycles cycles) const
{
    if (cycles == 0)
        return 0.0;
    const double peak_bytes =
        static_cast<double>(cycles) * cfg_.channels *
        cfg_.bytesPerCyclePerChannel();
    return static_cast<double>(stats_.bytesTransferred) / peak_bytes;
}

} // namespace pccs::dram
