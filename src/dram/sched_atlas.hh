/**
 * @file
 * ATLAS: Adaptive per-Thread Least-Attained-Service scheduling
 * (Kim et al., HPCA 2010; Table 2, row 3).
 *
 * Prioritization order:
 *   1) requests that have waited longer than the starvation threshold,
 *   2) requests from the source that has attained the least service,
 *   3) row-hit requests,
 *   4) oldest requests.
 * Attained service is accumulated per source during a long quantum and
 * exponentially smoothed across quanta.
 */

#ifndef PCCS_DRAM_SCHED_ATLAS_HH
#define PCCS_DRAM_SCHED_ATLAS_HH

#include <array>

#include "dram/scheduler.hh"

namespace pccs::dram {

class AtlasScheduler : public Scheduler
{
  public:
    explicit AtlasScheduler(const SchedulerParams &params);

    const char *name() const override { return "ATLAS"; }
    void tick(Cycles now) override;
    Cycles nextTickEvent() const override { return nextQuantum_; }
    void onService(const Request &req, Cycles now, unsigned bytes) override;
    int pick(unsigned channel, std::span<const QueueEntryView> entries,
             Cycles now) override;
    bool fastPickEligible() const override { return true; }
    int fastPick(const FastIssueView &view, unsigned channel,
                 Cycles now) override;

    /** @return smoothed attained service of a source (for tests). */
    double attainedService(unsigned source) const
    {
        return totalService_[source];
    }

  private:
    SchedulerParams params_;
    /** Service (bus cycles) attained in the current quantum. */
    std::array<double, maxSources> quantumService_{};
    /** Exponentially smoothed total attained service. */
    std::array<double, maxSources> totalService_{};
    Cycles nextQuantum_;
};

/** Register ATLAS with the policy registry. */
void registerAtlasPolicy();

} // namespace pccs::dram

#endif // PCCS_DRAM_SCHED_ATLAS_HH
