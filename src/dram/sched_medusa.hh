/**
 * @file
 * MEDUSA: reserved-bank round-robin scheduling (after the MEDUSA
 * DRAM-partitioning scheme; reference design from the kvprathap/dram
 * MemScheduler).
 *
 * A configurable subset of each channel's banks is "reserved" for
 * latency-predictable service: requests to reserved banks are served
 * ahead of all others, and the reserved banks themselves take strict
 * round-robin turns (a bank that was just serviced is masked out until
 * every other reserved bank with a pending turn has been offered one;
 * when the turn mask is exhausted it resets to the full reserved set).
 * Non-reserved banks share the leftover slots under plain FR-FCFS.
 * Prioritization order:
 *   1) reserved-bank requests whose bank still holds its round-robin
 *      turn (lowest bank index first),
 *   2) reserved-bank requests out of turn (row hit, then age),
 *   3) non-reserved requests (row hit, then age).
 */

#ifndef PCCS_DRAM_SCHED_MEDUSA_HH
#define PCCS_DRAM_SCHED_MEDUSA_HH

#include <cstdint>
#include <vector>

#include "dram/scheduler.hh"

namespace pccs::dram {

class MedusaScheduler : public Scheduler
{
  public:
    explicit MedusaScheduler(const SchedulerParams &params);

    const char *name() const override { return "MEDUSA"; }
    void onService(const Request &req, Cycles now, unsigned bytes) override;
    int pick(unsigned channel, std::span<const QueueEntryView> entries,
             Cycles now) override;
    bool fastPickEligible() const override { return true; }
    int fastPick(const FastIssueView &view, unsigned channel,
                 Cycles now) override;

    /** @return reserved banks still holding a turn (for tests). */
    std::uint32_t turnMask(unsigned channel) const
    {
        return channel < rrMask_.size() ? rrMask_[channel]
                                        : params_.medusaReservedBankMask;
    }

  private:
    std::uint32_t &channelMask(unsigned channel);

    SchedulerParams params_;
    /** Per-channel mask of reserved banks that still hold a turn. */
    std::vector<std::uint32_t> rrMask_;
};

/** Register MEDUSA with the policy registry. */
void registerMedusaPolicy();

} // namespace pccs::dram

#endif // PCCS_DRAM_SCHED_MEDUSA_HH
