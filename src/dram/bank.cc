#include "bank.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace pccs::dram {

void
Bank::activate(Cycles now, std::uint32_t row, const DramTimingParams &t)
{
    PCCS_ASSERT(canActivate(now), "illegal ACT at cycle %llu",
                static_cast<unsigned long long>(now));
    openRow_ = static_cast<std::int64_t>(row);
    nextCas_ = now + t.tRCD;
    nextPre_ = now + t.tRAS;
}

void
Bank::precharge(Cycles now, const DramTimingParams &t)
{
    PCCS_ASSERT(canPrecharge(now), "illegal PRE at cycle %llu",
                static_cast<unsigned long long>(now));
    openRow_ = noRow;
    nextAct_ = now + t.tRP;
}

Cycles
Bank::access(Cycles now, bool is_write, const DramTimingParams &t)
{
    PCCS_ASSERT(openRow_ != noRow && now >= nextCas_,
                "illegal CAS at cycle %llu",
                static_cast<unsigned long long>(now));
    nextCas_ = now + t.tCCD;
    const Cycles done = now + t.tCL + t.tBURST;
    // A read must respect tRTP before precharge; a write must respect
    // write recovery from the end of the data burst.
    const Cycles pre_after = is_write ? done + t.tWR : now + t.tRTP;
    nextPre_ = std::max(nextPre_, pre_after);
    return done;
}

ChannelTiming::ChannelTiming(unsigned banks, const DramTimingParams &timing)
    : timing_(timing), banks_(banks)
{
    PCCS_ASSERT(banks > 0, "channel needs at least one bank");
    PCCS_ASSERT(banks <= 64, "open-row bitmask supports <= 64 banks");
}

void
ChannelTiming::activateBank(unsigned b, Cycles now, std::uint32_t row)
{
    banks_[b].activate(now, row, timing_);
    openRowMask_ |= std::uint64_t{1} << b;
}

void
ChannelTiming::prechargeBank(unsigned b, Cycles now)
{
    banks_[b].precharge(now, timing_);
    openRowMask_ &= ~(std::uint64_t{1} << b);
}

Cycles
ChannelTiming::accessBank(unsigned b, Cycles now, bool is_write)
{
    return banks_[b].access(now, is_write, timing_);
}

int
ChannelTiming::firstOpenBank() const
{
    return openRowMask_ ? std::countr_zero(openRowMask_) : -1;
}

bool
ChannelTiming::canActivateRank(Cycles now) const
{
    if (now < nextActRank_)
        return false;
    if (actWindow_.size() >= 4 && now < actWindow_.front() + timing_.tFAW)
        return false;
    return true;
}

Cycles
ChannelTiming::rankActivateReadyAt() const
{
    Cycles ready = nextActRank_;
    if (actWindow_.size() >= 4)
        ready = std::max(ready, actWindow_.front() + timing_.tFAW);
    return ready;
}

void
ChannelTiming::recordActivate(Cycles now)
{
    nextActRank_ = now + timing_.tRRD;
    actWindow_.push_back(now);
    while (actWindow_.size() > 4)
        actWindow_.pop_front();
}

bool
ChannelTiming::busAvailable(Cycles now, bool is_write) const
{
    if (busFreeAt_ > now + timing_.tCL)
        return false;
    if (!is_write && now < readAllowedAt_)
        return false;
    return true;
}

Cycles
ChannelTiming::busReadyAt(bool is_write) const
{
    // busAvailable(c): busFreeAt_ <= c + tCL, and reads additionally
    // c >= readAllowedAt_.
    Cycles ready =
        busFreeAt_ > timing_.tCL ? busFreeAt_ - timing_.tCL : 0;
    if (!is_write)
        ready = std::max(ready, readAllowedAt_);
    return ready;
}

void
ChannelTiming::reserveBus(Cycles now, bool is_write)
{
    busFreeAt_ = now + timing_.tCL + timing_.tBURST;
    if (is_write)
        readAllowedAt_ = busFreeAt_ + timing_.tWTR;
}

} // namespace pccs::dram
