/**
 * @file
 * Memory-controller scheduling policy interface and registry.
 *
 * The controller presents the scheduler with the per-channel request
 * queue each time a command slot is free; the scheduler returns the
 * index of the request to advance. The concrete policies register
 * themselves with a name-keyed registry (PolicyInfo): the five the
 * paper evaluates in Section 2.3 (Table 2) — FCFS, FR-FCFS, ATLAS,
 * TCM, SMS — plus the extension policies BLISS, PARBS, and MEDUSA.
 *
 * Adding a policy is a one-file affair: implement Scheduler in a new
 * sched_<name>.cc, describe it with a PolicyInfo, and register it (for
 * archive-linked builtins, through a register hook listed in
 * scheduler.cc's builtin table; external code can call
 * registerSchedulerPolicy() directly at any time before the first
 * lookup). Every consumer — systems, calibration, benches, the CLI,
 * the equivalence tests — enumerates schedulerNames() instead of a
 * hard-coded list, so the new policy flows through all of them.
 */

#ifndef PCCS_DRAM_SCHEDULER_HH
#define PCCS_DRAM_SCHEDULER_HH

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dram/request.hh"

namespace pccs::dram {

/** Sentinel "no pending event" cycle for the event-driven core. */
inline constexpr Cycles kNoEvent = ~Cycles{0};

/** One schedulable request as the policy sees it. */
struct QueueEntryView
{
    const Request *req = nullptr;
    /** True if the next command this request needs can issue now. */
    bool issuable = false;
    /** True if the request's row is currently open in its bank. */
    bool rowHit = false;
};

/**
 * Abstract scheduling policy.
 *
 * One scheduler instance serves all channels; policy state that is
 * logically per-source (attained service, clusters, batches,
 * blacklists) is global, which mirrors how ATLAS coordinates across
 * memory controllers.
 */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /** @return the policy's display name. */
    virtual const char *name() const = 0;

    /**
     * Locality-aware policies keep a bank's row open while requests to
     * it are pending (the controller then refuses conflicting PREs).
     * FCFS is defined by *not* doing this: it schedules chronologically
     * with no locality awareness, which is what collapses its
     * row-buffer hit rate (Table 3).
     */
    virtual bool preservesRowHits() const { return true; }

    /**
     * Called before any pick on every *simulated* cycle the controller
     * processes; policies use it to run quantum updates (ATLAS/TCM),
     * shuffles, or blacklist clears (BLISS). The event-driven core
     * skips cycles wholesale, so a policy whose tick() is not a no-op
     * at some future cycle must report that cycle through
     * nextTickEvent() — otherwise the skip would jump over the state
     * update the reference core performs.
     */
    virtual void tick(Cycles now) { (void)now; }

    /**
     * Earliest future cycle at which tick() stops being a no-op
     * (quantum boundary, shuffle deadline, blacklist clear, ...), or
     * kNoEvent when tick() never does anything. The event-driven core
     * includes this in its next-event computation so tick() fires on
     * exactly the same cycles as under the per-cycle reference loop.
     */
    virtual Cycles nextTickEvent() const { return kNoEvent; }

    /** Notify that a request entered the request buffer. */
    virtual void onEnqueue(const Request &req) { (void)req; }

    /**
     * Notify that a request's CAS issued (it leaves the queue) and its
     * source received `bytes` of service at cycle `now`.
     */
    virtual void onService(const Request &req, Cycles now, unsigned bytes)
    {
        (void)req; (void)now; (void)bytes;
    }

    /**
     * True when pick() is a pure function of its arguments and the
     * scheduler's state: no internal mutation, no RNG consumption.
     * The event-driven core then drops pick() calls on *every* cycle
     * it can prove unproductive — including the cycle right after a
     * command issue or an enqueue — and wakes a channel only at its
     * next command-legality bound. SMS and PARBS return false: their
     * pick() rebatches (mutating state, and for SMS drawing RNG) on
     * exactly those post-change cycles, so they must be evaluated.
     */
    virtual bool pickIsPure() const { return true; }

    /**
     * Choose the next request to advance on a channel.
     *
     * Event-driven contract: the reference core calls pick() on every
     * cycle a channel has queued requests; the event-driven core only
     * calls it (a) on the cycle after any command issue, completion,
     * or enqueue (pickIsPure() policies: only when that cycle is also
     * a legality edge), and (b) on the first cycle any entry's next
     * command becomes timing-legal. A policy is compatible iff every
     * pick() call on a skipped cycle — queue contents unchanged and no
     * entry issuable — would have been a pure no-op (returns -1, no
     * state or RNG consumption). All registered policies satisfy this;
     * the per-policy audits live at the top of each sched_*.cc.
     *
     * @param channel index of the channel being scheduled
     * @param entries snapshot of the channel's queued requests
     * @param now current cycle
     * @return index of the chosen entry, or -1 to idle. The returned
     *         entry must have issuable == true.
     */
    virtual int pick(unsigned channel,
                     std::span<const QueueEntryView> entries,
                     Cycles now) = 0;

    /** Maximum number of sources a policy tracks. */
    static constexpr unsigned maxSources = 64;
};

/** Tunable knobs of the fairness-aware policies. */
struct SchedulerParams
{
    /** ATLAS/TCM ranking quantum in cycles. */
    Cycles quantum = 50000;
    /** ATLAS starvation threshold: waiting longer forces priority. */
    Cycles starvationThreshold = 20000;
    /** ATLAS exponential-smoothing weight for attained service. */
    double atlasAlpha = 0.875;
    /** TCM: fraction of total bandwidth granted to the latency cluster. */
    double tcmClusterFraction = 0.15;
    /** TCM: shuffle interval for the bandwidth cluster ranking. */
    Cycles tcmShuffleInterval = 5000;
    /** SMS: maximum requests per formed batch. */
    unsigned smsBatchCap = 16;
    /** SMS: probability of shortest-job-first batch selection. */
    double smsShortestFirstProb = 0.9;
    /** BLISS: consecutive-service streak that blacklists a source. */
    unsigned blissBlacklistThreshold = 4;
    /** BLISS: blacklist clearing interval in cycles. */
    Cycles blissClearInterval = 10000;
    /** PARBS: per-source marking cap when a batch forms. */
    unsigned parbsBatchCap = 5;
    /** MEDUSA: bitmask of reserved (round-robin) banks per channel. */
    std::uint32_t medusaReservedBankMask = 0xF;
    /** Seed for any stochastic choices (SMS). */
    std::uint64_t seed = 0xC0FFEEull;
};

/**
 * Descriptor of one registered scheduling policy.
 *
 * The capability flags mirror the corresponding Scheduler virtuals so
 * tooling (`pccs policies`, CI matrices) can inspect a policy without
 * instantiating it; the registry self-check in tests asserts that the
 * descriptor and a fresh instance agree.
 */
struct PolicyInfo
{
    /** Canonical display name ("FR-FCFS"). */
    std::string name;
    /**
     * Accepted lowercase aliases ("frfcfs"). The canonical name is
     * always accepted case-insensitively as well.
     */
    std::vector<std::string> aliases;
    /** Factory over the shared parameter block. */
    std::function<std::unique_ptr<Scheduler>(const SchedulerParams &)>
        factory;
    /** Scheduler::pickIsPure() of instances of this policy. */
    bool pickIsPure = true;
    /** Scheduler::preservesRowHits() of instances of this policy. */
    bool preservesRowHits = true;
    /** True when nextTickEvent() is ever != kNoEvent (ATLAS/TCM/BLISS). */
    bool needsTickEvents = false;
};

/**
 * Register a policy. Registration order defines enumeration order;
 * re-registering an already-known canonical name (case-insensitively)
 * is a fatal user error. Builtin policies are installed first, in
 * Table-2 order followed by the extension policies, no matter how
 * early this is called — external policies always enumerate after
 * them.
 */
void registerSchedulerPolicy(PolicyInfo info);

/** All registered policies, in registration order. */
const std::vector<PolicyInfo> &schedulerPolicies();

/** Canonical names of all registered policies, in order. */
std::vector<std::string> schedulerNames();

/**
 * Look up a policy by canonical name or alias (case-insensitive).
 * @return nullptr when the name is unknown.
 */
const PolicyInfo *findSchedulerPolicy(std::string_view name);

/**
 * Look up a policy by name; unknown names are a fatal user error
 * whose message enumerates the valid policy names.
 */
const PolicyInfo &schedulerFromName(std::string_view name);

/** Comma-separated canonical policy names (for error messages). */
std::string schedulerNameList();

/** Create a scheduler by policy name (fatal on unknown names). */
std::unique_ptr<Scheduler> makeScheduler(std::string_view name,
                                         const SchedulerParams &params = {});

} // namespace pccs::dram

#endif // PCCS_DRAM_SCHEDULER_HH
