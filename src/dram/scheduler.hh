/**
 * @file
 * Memory-controller scheduling policy interface and registry.
 *
 * The controller presents the scheduler with the per-channel request
 * queue each time a command slot is free; the scheduler returns the
 * index of the request to advance. The concrete policies register
 * themselves with a name-keyed registry (PolicyInfo): the five the
 * paper evaluates in Section 2.3 (Table 2) — FCFS, FR-FCFS, ATLAS,
 * TCM, SMS — plus the extension policies BLISS, PARBS, and MEDUSA.
 *
 * Adding a policy is a one-file affair: implement Scheduler in a new
 * sched_<name>.cc, describe it with a PolicyInfo, and register it (for
 * archive-linked builtins, through a register hook listed in
 * scheduler.cc's builtin table; external code can call
 * registerSchedulerPolicy() directly at any time before the first
 * lookup). Every consumer — systems, calibration, benches, the CLI,
 * the equivalence tests — enumerates schedulerNames() instead of a
 * hard-coded list, so the new policy flows through all of them.
 */

#ifndef PCCS_DRAM_SCHEDULER_HH
#define PCCS_DRAM_SCHEDULER_HH

#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dram/request.hh"
#include "dram/request_queue.hh"

namespace pccs::dram {

/** Sentinel "no pending event" cycle for the event-driven core. */
inline constexpr Cycles kNoEvent = ~Cycles{0};

/** One schedulable request as the policy sees it. */
struct QueueEntryView
{
    const Request *req = nullptr;
    /** True if the next command this request needs can issue now. */
    bool issuable = false;
    /** True if the request's row is currently open in its bank. */
    bool rowHit = false;
};

/**
 * The saturated-path alternative to a materialized QueueEntryView
 * span: per-bank legality bitmasks over the queue's incrementally
 * maintained candidate lists. The controller classifies each occupied
 * bank once (all of a bank's read hits share one CAS-legality bound,
 * all write hits another, all conflict PREs a third, all closed-bank
 * ACTs a fourth), so a policy's fastPick() works on whole banks via
 * countr_zero loops instead of walking entries.
 *
 * Mask semantics at the evaluation cycle `now`:
 *  - hitReadMask / hitWriteMask: banks whose pending read / write
 *    open-row hits can issue their CAS now;
 *  - preMask: banks whose (unmasked) row-conflict PRE is legal now —
 *    for row-hit-preserving policies a bank with pending hits never
 *    appears here, so per bank the hit and non-hit candidate classes
 *    are mutually exclusive;
 *  - actMask: closed banks whose ACT is legal now (rank windows
 *    included).
 */
struct FastIssueView
{
    const RequestQueue *queue = nullptr;
    unsigned numBanks = 0;
    std::uint64_t openRowMask = 0;
    std::uint64_t hitReadMask = 0;
    std::uint64_t hitWriteMask = 0;
    std::uint64_t preMask = 0;
    std::uint64_t actMask = 0;

    /** Banks with an issuable CAS / an issuable PRE-or-ACT. */
    std::uint64_t hitBanks() const { return hitReadMask | hitWriteMask; }
    std::uint64_t otherBanks() const { return preMask | actMask; }

    /**
     * Oldest issuable open-row hit of bank `b` (min arrival serial of
     * the issuable read/write hit-list heads), or -1.
     */
    int oldestHitSlot(unsigned b) const
    {
        const std::uint64_t bit = std::uint64_t{1} << b;
        const int rd = (hitReadMask & bit) ? queue->hitHeadRead(b) : -1;
        const int wr = (hitWriteMask & bit) ? queue->hitHeadWrite(b) : -1;
        if (rd < 0)
            return wr;
        if (wr < 0)
            return rd;
        return queue->serial(rd) < queue->serial(wr) ? rd : wr;
    }

    /**
     * Oldest non-hit candidate of bank `b` — valid for banks in
     * otherBanks() under a row-hit-preserving policy (such a bank has
     * no pending hits, so its FIFO head *is* the oldest PRE/ACT
     * candidate).
     */
    int oldestOtherSlot(unsigned b) const { return queue->bankHead(b); }

    /** Exact per-slot issuability (slot must be queued). */
    bool slotIssuable(int s) const
    {
        const std::uint64_t bit = std::uint64_t{1} << queue->bank(s);
        if (queue->isHit(s))
            return (queue->isWrite(s) ? hitWriteMask : hitReadMask) &
                   bit;
        if (openRowMask & bit)
            return (preMask & bit) != 0;
        return (actMask & bit) != 0;
    }

    /**
     * Source-tier algebra (rank-based policies). Valid only under a
     * row-hit-preserving policy: preservation makes a bank's hit and
     * non-hit candidate classes mutually exclusive, so a bank in
     * preMask/actMask has *only* issuable non-hit entries and the
     * per-source masks intersect cleanly with the legality masks.
     */

    /** Banks where source `src` has an issuable open-row hit. */
    std::uint64_t sourceIssuableHitBanks(unsigned src) const
    {
        return (queue->sourceHitReadMask(src) & hitReadMask) |
               (queue->sourceHitWriteMask(src) & hitWriteMask);
    }

    /** Banks where source `src` has an issuable PRE/ACT candidate. */
    std::uint64_t sourceIssuableOtherBanks(unsigned src) const
    {
        return queue->sourceOccupiedMask(src) & (preMask | actMask);
    }

    /** True when source `src` has any issuable entry. */
    bool sourceHasIssuable(unsigned src) const
    {
        return (sourceIssuableHitBanks(src) |
                sourceIssuableOtherBanks(src)) != 0;
    }

    /** Sources with at least one issuable entry, one bit per source. */
    std::uint64_t issuableSourceMask() const
    {
        std::uint64_t out = 0;
        for (std::uint64_t m = queue->activeSourceMask(); m;
             m &= m - 1) {
            const unsigned src =
                static_cast<unsigned>(std::countr_zero(m));
            if (sourceHasIssuable(src))
                out |= std::uint64_t{1} << src;
        }
        return out;
    }

    /**
     * Oldest issuable open-row hit of source `src` (a walk of its
     * arrival FIFO, guarded by the mask check), or -1.
     */
    int oldestIssuableHitOfSource(unsigned src) const
    {
        if (!sourceIssuableHitBanks(src))
            return -1;
        for (int s = queue->sourceHead(src); s >= 0;
             s = queue->sourceNext(s)) {
            if (queue->isHit(s) && slotIssuable(s))
                return s;
        }
        return -1;
    }

    /** Oldest issuable entry (hit or not) of source `src`, or -1. */
    int oldestIssuableOfSource(unsigned src) const
    {
        if (!(sourceIssuableHitBanks(src) |
              sourceIssuableOtherBanks(src)))
            return -1;
        for (int s = queue->sourceHead(src); s >= 0;
             s = queue->sourceNext(s)) {
            if (slotIssuable(s))
                return s;
        }
        return -1;
    }
};

/**
 * Oldest issuable row hit, falling back to the oldest issuable
 * non-hit, over the banks selected by `filter` — the FR-FCFS decision
 * (row hit first, then age; age == min arrival serial, which matches
 * the materialized comparators' arrival-then-walk-order tie-break),
 * shared by the eligible policies' fastPick() tiers.
 * @return the chosen slot, or -1 when no filtered bank has a candidate.
 */
inline int
fastPickOldestHitElseOldest(const FastIssueView &v,
                            std::uint64_t filter = ~std::uint64_t{0})
{
    int best = -1;
    std::uint64_t best_serial = 0;
    for (std::uint64_t m = v.hitBanks() & filter; m; m &= m - 1) {
        const unsigned b =
            static_cast<unsigned>(std::countr_zero(m));
        const int s = v.oldestHitSlot(b);
        const std::uint64_t ser = v.queue->serial(s);
        if (best < 0 || ser < best_serial) {
            best = s;
            best_serial = ser;
        }
    }
    if (best >= 0)
        return best;
    for (std::uint64_t m = v.otherBanks() & filter; m; m &= m - 1) {
        const unsigned b =
            static_cast<unsigned>(std::countr_zero(m));
        const int s = v.oldestOtherSlot(b);
        const std::uint64_t ser = v.queue->serial(s);
        if (best < 0 || ser < best_serial) {
            best = s;
            best_serial = ser;
        }
    }
    return best;
}

/**
 * The same oldest-hit-else-oldest decision restricted to a *source*
 * tier: the oldest issuable hit of any source in `sources`, else the
 * oldest issuable entry of any of them. This is the inner step of
 * every rank-ordered policy (ATLAS rank tier, TCM cluster tier, BLISS
 * blacklist tier, PARBS within-batch rank) once the tier's member set
 * is known. Callers whose tier covers every issuable source should
 * take fastPickOldestHitElseOldest() instead — the bank-level walk
 * touches O(occupied banks) list heads, no per-source FIFOs.
 * Requires a row-hit-preserving policy (see the source-tier algebra
 * note on FastIssueView).
 * @return the chosen slot, or -1 when no tier source has a candidate.
 */
inline int
fastPickOldestHitElseOldestOfSources(const FastIssueView &v,
                                     std::uint64_t sources)
{
    int best = -1;
    std::uint64_t best_serial = 0;
    for (std::uint64_t m = sources; m; m &= m - 1) {
        const unsigned src =
            static_cast<unsigned>(std::countr_zero(m));
        const int s = v.oldestIssuableHitOfSource(src);
        if (s < 0)
            continue;
        const std::uint64_t ser = v.queue->serial(s);
        if (best < 0 || ser < best_serial) {
            best = s;
            best_serial = ser;
        }
    }
    if (best >= 0)
        return best;
    for (std::uint64_t m = sources; m; m &= m - 1) {
        const unsigned src =
            static_cast<unsigned>(std::countr_zero(m));
        const int s = v.oldestIssuableOfSource(src);
        if (s < 0)
            continue;
        const std::uint64_t ser = v.queue->serial(s);
        if (best < 0 || ser < best_serial) {
            best = s;
            best_serial = ser;
        }
    }
    return best;
}

/**
 * Oldest issuable entry regardless of hit status — SMS's
 * work-conserving fallback when the in-flight batch owner cannot
 * issue. Per issuable bank the oldest candidate is a list head (hit
 * heads for CAS banks, the FIFO head for PRE/ACT banks under a
 * preserving policy), so the global minimum is a min over heads.
 * @return the chosen slot, or -1 when nothing is issuable.
 */
inline int
fastPickOldestIssuable(const FastIssueView &v)
{
    int best = -1;
    std::uint64_t best_serial = 0;
    for (std::uint64_t m = v.hitBanks(); m; m &= m - 1) {
        const unsigned b =
            static_cast<unsigned>(std::countr_zero(m));
        const int s = v.oldestHitSlot(b);
        const std::uint64_t ser = v.queue->serial(s);
        if (best < 0 || ser < best_serial) {
            best = s;
            best_serial = ser;
        }
    }
    for (std::uint64_t m = v.otherBanks(); m; m &= m - 1) {
        const unsigned b =
            static_cast<unsigned>(std::countr_zero(m));
        const int s = v.oldestOtherSlot(b);
        const std::uint64_t ser = v.queue->serial(s);
        if (best < 0 || ser < best_serial) {
            best = s;
            best_serial = ser;
        }
    }
    return best;
}

/**
 * Abstract scheduling policy.
 *
 * One scheduler instance serves all channels; policy state that is
 * logically per-source (attained service, clusters, batches,
 * blacklists) is global, which mirrors how ATLAS coordinates across
 * memory controllers.
 */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /** @return the policy's display name. */
    virtual const char *name() const = 0;

    /**
     * Locality-aware policies keep a bank's row open while requests to
     * it are pending (the controller then refuses conflicting PREs).
     * FCFS is defined by *not* doing this: it schedules chronologically
     * with no locality awareness, which is what collapses its
     * row-buffer hit rate (Table 3).
     */
    virtual bool preservesRowHits() const { return true; }

    /**
     * Called before any pick on every *simulated* cycle the controller
     * processes; policies use it to run quantum updates (ATLAS/TCM),
     * shuffles, or blacklist clears (BLISS). The event-driven core
     * skips cycles wholesale, so a policy whose tick() is not a no-op
     * at some future cycle must report that cycle through
     * nextTickEvent() — otherwise the skip would jump over the state
     * update the reference core performs.
     */
    virtual void tick(Cycles now) { (void)now; }

    /**
     * Earliest future cycle at which tick() stops being a no-op
     * (quantum boundary, shuffle deadline, blacklist clear, ...), or
     * kNoEvent when tick() never does anything. The event-driven core
     * includes this in its next-event computation so tick() fires on
     * exactly the same cycles as under the per-cycle reference loop.
     */
    virtual Cycles nextTickEvent() const { return kNoEvent; }

    /** Notify that a request entered the request buffer. */
    virtual void onEnqueue(const Request &req) { (void)req; }

    /**
     * Notify that a request's CAS issued (it leaves the queue) and its
     * source received `bytes` of service at cycle `now`.
     */
    virtual void onService(const Request &req, Cycles now, unsigned bytes)
    {
        (void)req; (void)now; (void)bytes;
    }

    /**
     * True when pick() is a pure function of its arguments and the
     * scheduler's state: no internal mutation, no RNG consumption.
     * The event-driven core then drops pick() calls on *every* cycle
     * it can prove unproductive — including the cycle right after a
     * command issue or an enqueue — and wakes a channel only at its
     * next command-legality bound. SMS and PARBS return false: their
     * pick() rebatches (mutating state, and for SMS drawing RNG) on
     * exactly those post-change cycles, so they must be evaluated.
     */
    virtual bool pickIsPure() const { return true; }

    /**
     * Choose the next request to advance on a channel.
     *
     * Event-driven contract: the reference core calls pick() on every
     * cycle a channel has queued requests; the event-driven core only
     * calls it (a) on the cycle after any command issue, completion,
     * or enqueue (pickIsPure() policies: only when that cycle is also
     * a legality edge), and (b) on the first cycle any entry's next
     * command becomes timing-legal. A policy is compatible iff every
     * pick() call on a skipped cycle — queue contents unchanged and no
     * entry issuable — would have been a pure no-op (returns -1, no
     * state or RNG consumption). All registered policies satisfy this;
     * the per-policy audits live at the top of each sched_*.cc.
     *
     * @param channel index of the channel being scheduled
     * @param entries snapshot of the channel's queued requests
     * @param now current cycle
     * @return index of the chosen entry, or -1 to idle. The returned
     *         entry must have issuable == true.
     */
    virtual int pick(unsigned channel,
                     std::span<const QueueEntryView> entries,
                     Cycles now) = 0;

    /** fastPick() return value requesting the materialized slow path. */
    static constexpr int kFastPickFallback = -2;

    /**
     * True when fastPick() implements this policy's decision exactly
     * (possibly via kFastPickFallback escapes for states it cannot
     * express over the masks). The fast engine evaluates a channel on
     * exactly the cycles the lazy materialized path would: for
     * pickIsPure() policies only when a candidate is issuable; for
     * impure policies (SMS/PARBS) additionally on every post-change
     * cycle, so their in-pick mutations land on the reference cycles.
     */
    virtual bool fastPickEligible() const { return false; }

    /**
     * Branch-light pick over the bank-granular FastIssueView (plus
     * the per-source rank-tier masks) instead of a materialized entry
     * span. Must return exactly the slot the materialized pick()
     * would have chosen (the equivalence fuzz in
     * tests/test_dram_fastpath.cc enforces this per policy), -1 to
     * idle, or kFastPickFallback to make the controller materialize
     * the full entry list and call pick(). Called when at least one
     * candidate is issuable — and, for pickIsPure() == false
     * policies, on every evaluated cycle even with nothing issuable,
     * mirroring pick()'s call schedule; such a policy must perform
     * the same state mutations and RNG draws pick() would, and may
     * only return kFastPickFallback *before* mutating anything (the
     * fallback re-runs the decision through pick()).
     *
     * @return a queue slot index (not an entry index), -1, or
     *         kFastPickFallback.
     */
    virtual int fastPick(const FastIssueView &view, unsigned channel,
                         Cycles now)
    {
        (void)view; (void)channel; (void)now;
        return kFastPickFallback;
    }

    /** Maximum number of sources a policy tracks. */
    static constexpr unsigned maxSources = kMaxQueueSources;
};

/** Tunable knobs of the fairness-aware policies. */
struct SchedulerParams
{
    /** ATLAS/TCM ranking quantum in cycles. */
    Cycles quantum = 50000;
    /** ATLAS starvation threshold: waiting longer forces priority. */
    Cycles starvationThreshold = 20000;
    /** ATLAS exponential-smoothing weight for attained service. */
    double atlasAlpha = 0.875;
    /** TCM: fraction of total bandwidth granted to the latency cluster. */
    double tcmClusterFraction = 0.15;
    /** TCM: shuffle interval for the bandwidth cluster ranking. */
    Cycles tcmShuffleInterval = 5000;
    /** SMS: maximum requests per formed batch. */
    unsigned smsBatchCap = 16;
    /** SMS: probability of shortest-job-first batch selection. */
    double smsShortestFirstProb = 0.9;
    /** BLISS: consecutive-service streak that blacklists a source. */
    unsigned blissBlacklistThreshold = 4;
    /** BLISS: blacklist clearing interval in cycles. */
    Cycles blissClearInterval = 10000;
    /** PARBS: per-source marking cap when a batch forms. */
    unsigned parbsBatchCap = 5;
    /** MEDUSA: bitmask of reserved (round-robin) banks per channel. */
    std::uint32_t medusaReservedBankMask = 0xF;
    /** Seed for any stochastic choices (SMS). */
    std::uint64_t seed = 0xC0FFEEull;
};

/**
 * Descriptor of one registered scheduling policy.
 *
 * The capability flags mirror the corresponding Scheduler virtuals so
 * tooling (`pccs policies`, CI matrices) can inspect a policy without
 * instantiating it; the registry self-check in tests asserts that the
 * descriptor and a fresh instance agree.
 */
struct PolicyInfo
{
    /** Canonical display name ("FR-FCFS"). */
    std::string name;
    /**
     * Accepted lowercase aliases ("frfcfs"). The canonical name is
     * always accepted case-insensitively as well.
     */
    std::vector<std::string> aliases;
    /** Factory over the shared parameter block. */
    std::function<std::unique_ptr<Scheduler>(const SchedulerParams &)>
        factory;
    /** Scheduler::pickIsPure() of instances of this policy. */
    bool pickIsPure = true;
    /** Scheduler::preservesRowHits() of instances of this policy. */
    bool preservesRowHits = true;
    /** True when nextTickEvent() is ever != kNoEvent (ATLAS/TCM/BLISS). */
    bool needsTickEvents = false;
    /** Scheduler::fastPickEligible() of instances of this policy. */
    bool fastPickEligible = false;
    /**
     * Documented fastPick() fallback states ("" when the fast path is
     * total): the conditions under which the policy materializes the
     * full entry list via kFastPickFallback. Shown by `pccs policies`.
     */
    std::string fastPickNote;
};

/**
 * Register a policy. Registration order defines enumeration order;
 * re-registering an already-known canonical name (case-insensitively)
 * is a fatal user error. Builtin policies are installed first, in
 * Table-2 order followed by the extension policies, no matter how
 * early this is called — external policies always enumerate after
 * them.
 */
void registerSchedulerPolicy(PolicyInfo info);

/** All registered policies, in registration order. */
const std::vector<PolicyInfo> &schedulerPolicies();

/** Canonical names of all registered policies, in order. */
std::vector<std::string> schedulerNames();

/**
 * Look up a policy by canonical name or alias (case-insensitive).
 * @return nullptr when the name is unknown.
 */
const PolicyInfo *findSchedulerPolicy(std::string_view name);

/**
 * Look up a policy by name; unknown names are a fatal user error
 * whose message enumerates the valid policy names.
 */
const PolicyInfo &schedulerFromName(std::string_view name);

/** Comma-separated canonical policy names (for error messages). */
std::string schedulerNameList();

/** Create a scheduler by policy name (fatal on unknown names). */
std::unique_ptr<Scheduler> makeScheduler(std::string_view name,
                                         const SchedulerParams &params = {});

} // namespace pccs::dram

#endif // PCCS_DRAM_SCHEDULER_HH
