/**
 * @file
 * BLISS: Blacklisting memory scheduling (Subramanian et al.,
 * ICCD 2014 / TPDS 2016).
 *
 * Observation: full rank-ordered schedulers (ATLAS/TCM) pay for
 * per-source ranking hardware, yet most interference comes from
 * sources that stream many consecutive requests. BLISS keeps a single
 * bit per source: a source that gets `blissBlacklistThreshold`
 * consecutive services is blacklisted (deprioritized) until the
 * blacklist is wholesale cleared every `blissClearInterval` cycles.
 * Prioritization order:
 *   1) non-blacklisted sources,
 *   2) row-hit requests,
 *   3) oldest requests.
 */

#ifndef PCCS_DRAM_SCHED_BLISS_HH
#define PCCS_DRAM_SCHED_BLISS_HH

#include <array>

#include "dram/scheduler.hh"

namespace pccs::dram {

class BlissScheduler : public Scheduler
{
  public:
    explicit BlissScheduler(const SchedulerParams &params);

    const char *name() const override { return "BLISS"; }
    void tick(Cycles now) override;
    Cycles nextTickEvent() const override { return nextClear_; }
    void onService(const Request &req, Cycles now, unsigned bytes) override;
    int pick(unsigned channel, std::span<const QueueEntryView> entries,
             Cycles now) override;
    bool fastPickEligible() const override { return true; }
    int fastPick(const FastIssueView &view, unsigned channel,
                 Cycles now) override;

    /** @return true if a source is currently blacklisted (for tests). */
    bool blacklisted(unsigned source) const { return blacklist_[source]; }

  private:
    SchedulerParams params_;
    /** Source served by the most recent CAS; -1 before the first. */
    int lastSource_ = -1;
    /** Length of the current consecutive-service streak. */
    unsigned streak_ = 0;
    /** One interference bit per source. */
    std::array<bool, maxSources> blacklist_{};
    /** Number of set bits in blacklist_ (fast-pick degeneracy check). */
    unsigned blacklistCount_ = 0;
    /** Bitmask mirror of blacklist_ (fast-pick tier filter). */
    std::uint64_t blacklistMask_ = 0;
    Cycles nextClear_;
};

/** Register BLISS with the policy registry. */
void registerBlissPolicy();

} // namespace pccs::dram

#endif // PCCS_DRAM_SCHED_BLISS_HH
