/**
 * @file
 * Top-level DRAM simulation harness: a memory controller plus a set of
 * synthetic core traffic generators, with warmup/measure windows.
 *
 * This is the substrate for the paper's Section 2.3 validation: the
 * registered scheduling policies are run against a 16-core
 * configuration (Table 1) and per-group achieved relative speeds,
 * row-buffer hit rates, and effective bandwidths are extracted
 * (Figure 5, Table 3).
 */

#ifndef PCCS_DRAM_SYSTEM_HH
#define PCCS_DRAM_SYSTEM_HH

#include <memory>
#include <string_view>
#include <vector>

#include "dram/controller.hh"
#include "dram/run_mode.hh"
#include "dram/trace_replay.hh"
#include "dram/traffic.hh"

namespace pccs::dram {

/** A complete DRAM subsystem simulation with synthetic cores. */
class DramSystem
{
  public:
    /** @param policy registered scheduler-policy name or alias. */
    DramSystem(const DramConfig &cfg, std::string_view policy,
               const SchedulerParams &sched_params = {},
               DramRunMode mode = defaultDramRunMode());

    /** Select the run-loop implementation (bit-exact either way). */
    void setRunMode(DramRunMode mode)
    {
        mode_ = mode;
        controller_->setLazyChannelScan(mode ==
                                        DramRunMode::EventDriven);
    }
    DramRunMode runMode() const { return mode_; }

    /** Add a synthetic core; returns its index. */
    std::size_t addGenerator(const TrafficParams &params);

    /** Add a trace-replay core; returns its index among replays. */
    std::size_t addReplay(const ReplayParams &params,
                          std::vector<TraceEntry> trace);

    /**
     * Advance the simulation by `cycles` bus cycles.
     *
     * In EventDriven mode quiet stretches — cycles provably free of
     * completions, command issue, refresh progress, scheduler tick
     * events, and token-bucket issue crossings — are skipped in one
     * jump; every simulated state transition, statistic, and RNG draw
     * is bit-identical to Reference mode (see DESIGN.md and
     * tests/test_dram_equivalence.cc).
     */
    void run(Cycles cycles);

    /** Start a fresh measurement window (zeroes all counters). */
    void resetMeasurement();

    /** @return current simulation cycle. */
    Cycles now() const { return now_; }

    /** @return cycles elapsed since the last resetMeasurement(). */
    Cycles windowCycles() const { return now_ - windowStart_; }

    MemoryController &controller() { return *controller_; }
    const MemoryController &controller() const { return *controller_; }

    CoreTrafficGenerator &generator(std::size_t i)
    {
        return *generators_[i];
    }
    std::size_t numGenerators() const { return generators_.size(); }

    TraceReplayGenerator &replay(std::size_t i) { return *replays_[i]; }
    std::size_t numReplays() const { return replays_.size(); }

    /** Achieved bandwidth of generator i over the current window. */
    GBps achievedBandwidth(std::size_t i) const;

    /** Effective bandwidth fraction of peak over the current window. */
    double effectiveBandwidthFraction() const;

  private:
    void runReference(Cycles end);
    void runEventDriven(Cycles end);
    /** One full simulated cycle; @return true when anything happened. */
    bool stepCycle();

    DramRunMode mode_;
    std::unique_ptr<MemoryController> controller_;
    std::vector<std::unique_ptr<CoreTrafficGenerator>> generators_;
    std::vector<std::unique_ptr<TraceReplayGenerator>> replays_;
    /** Per-source completion routing (synthetic or replay). */
    std::vector<CoreTrafficGenerator *> bySource_;
    std::vector<TraceReplayGenerator *> replayBySource_;
    Cycles now_ = 0;
    Cycles windowStart_ = 0;
};

/**
 * Measure a kernel's standalone-vs-corun relative speed with a given
 * policy: convenience wrapper used by tests and benches.
 */
struct RelativeSpeedResult
{
    double relativeSpeed = 0.0;  //!< corun speed / standalone speed, in %
    GBps standaloneBandwidth = 0.0;
    GBps corunBandwidth = 0.0;
};

} // namespace pccs::dram

#endif // PCCS_DRAM_SYSTEM_HH
