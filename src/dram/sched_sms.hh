/**
 * @file
 * SMS: Staged Memory Scheduling (Ausavarungnirun et al., ISCA 2012;
 * Table 2, row 5).
 *
 * Stage 1 groups each source's requests into batches of accesses to the
 * same row (up to a cap). Stage 2 schedules whole batches: with
 * probability p it serves the source whose head batch is shortest
 * (favoring latency-sensitive, low-intensity sources) and with
 * probability (1-p) it picks batches round-robin (providing fairness to
 * bandwidth-heavy sources). A selected batch is served to completion.
 */

#ifndef PCCS_DRAM_SCHED_SMS_HH
#define PCCS_DRAM_SCHED_SMS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "dram/scheduler.hh"

namespace pccs::dram {

class SmsScheduler : public Scheduler
{
  public:
    explicit SmsScheduler(const SchedulerParams &params);

    const char *name() const override { return "SMS"; }
    /** pick() rebatches (state + RNG) after queue changes. */
    bool pickIsPure() const override { return false; }
    int pick(unsigned channel, std::span<const QueueEntryView> entries,
             Cycles now) override;
    bool fastPickEligible() const override { return true; }
    int fastPick(const FastIssueView &view, unsigned channel,
                 Cycles now) override;

  private:
    /** Per-channel batch-service state. */
    struct ChannelState
    {
        /** Source whose batch is being served; -1 when none. */
        int currentSource = -1;
        /** Row of the batch being served. */
        std::uint32_t batchRow = 0;
        /** Requests left in the current batch. */
        unsigned remaining = 0;
        /** Round-robin pointer for (1-p) selections. */
        unsigned rrNext = 0;
    };

    ChannelState &channelState(unsigned channel);

    SchedulerParams params_;
    Rng rng_;
    std::vector<ChannelState> channels_;
};

/** Register SMS with the policy registry. */
void registerSmsPolicy();

} // namespace pccs::dram

#endif // PCCS_DRAM_SCHED_SMS_HH
