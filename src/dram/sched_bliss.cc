#include "sched_bliss.hh"

#include "common/logging.hh"

// Event-driven audit: pick() reads the blacklist and mutates nothing,
// so every skipped no-issuable cycle is a pure no-op. The two state
// mutators are onService() — driven by CAS issues, which both cores
// process on identical cycles — and the periodic blacklist clear in
// tick(). The clear is the one time-triggered change and is exported
// through nextTickEvent(), so the event core wakes on the precise
// boundary cycle and the `nextClear_ = now + interval` rearm chain
// advances identically in both modes.
//
// Fast-pick audit: the comparator is a two-tier source split
// (non-blacklisted first) with the FR-FCFS step inside each tier.
// With an empty blacklist — or every issuable source on one side of
// it — the split vanishes and the decision is the shared bank-level
// oldest-hit-else-oldest helper; otherwise the clean tier wins and
// the per-source masks restrict the same helper to its members. No
// fallback states (PR 9 fell back whenever the blacklist was
// non-empty, which under saturation was the common case).
namespace pccs::dram {

BlissScheduler::BlissScheduler(const SchedulerParams &params)
    : params_(params), nextClear_(params.blissClearInterval)
{
}

void
BlissScheduler::tick(Cycles now)
{
    if (now < nextClear_)
        return;
    // Periodic forgiveness: every source gets a clean slate, so a
    // blacklisted source is deprioritized for at most one interval.
    blacklist_.fill(false);
    blacklistCount_ = 0;
    blacklistMask_ = 0;
    lastSource_ = -1;
    streak_ = 0;
    nextClear_ = now + params_.blissClearInterval;
}

void
BlissScheduler::onService(const Request &req, Cycles now, unsigned bytes)
{
    (void)now;
    (void)bytes;
    PCCS_ASSERT(req.source < maxSources, "source id %u out of range",
                req.source);
    if (static_cast<int>(req.source) == lastSource_) {
        if (++streak_ >= params_.blissBlacklistThreshold &&
            !blacklist_[req.source]) {
            blacklist_[req.source] = true;
            ++blacklistCount_;
            blacklistMask_ |= std::uint64_t{1} << req.source;
        }
    } else {
        lastSource_ = static_cast<int>(req.source);
        streak_ = 1;
    }
}

int
BlissScheduler::pick(unsigned channel,
                     std::span<const QueueEntryView> entries, Cycles now)
{
    (void)channel;
    (void)now;
    auto better = [&](const QueueEntryView &a,
                      const QueueEntryView &b) -> bool {
        const bool a_black = blacklist_[a.req->source];
        const bool b_black = blacklist_[b.req->source];
        if (a_black != b_black)
            return !a_black;
        if (a.rowHit != b.rowHit)
            return a.rowHit;
        return a.req->arrival < b.req->arrival;
    };

    int best = -1;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (!entries[i].issuable)
            continue;
        if (best < 0 || better(entries[i], entries[best]))
            best = static_cast<int>(i);
    }
    return best;
}

int
BlissScheduler::fastPick(const FastIssueView &view, unsigned channel,
                         Cycles now)
{
    (void)channel;
    (void)now;
    if (blacklistCount_ == 0)
        return fastPickOldestHitElseOldest(view);
    const std::uint64_t issuable = view.issuableSourceMask();
    const std::uint64_t clean = issuable & ~blacklistMask_;
    // Tier 1: non-blacklisted sources; when every issuable source is
    // on one side of the blacklist the tier split vanishes and the
    // decision is plain FR-FCFS.
    if (clean == issuable || clean == 0)
        return fastPickOldestHitElseOldest(view);
    return fastPickOldestHitElseOldestOfSources(view, clean);
}

void
registerBlissPolicy()
{
    registerSchedulerPolicy({
        .name = "BLISS",
        .aliases = {},
        .factory =
            [](const SchedulerParams &p) {
                return std::make_unique<BlissScheduler>(p);
            },
        .pickIsPure = true,
        .preservesRowHits = true,
        .needsTickEvents = true,
        .fastPickEligible = true,
        .fastPickNote = {},
    });
}

} // namespace pccs::dram
