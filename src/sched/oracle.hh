/**
 * @file
 * Oracle validation of accepted schedules: replay a controller's
 * admit/complete event log through the SoC execution model — the same
 * ground truth the paper scores PCCS against — and measure how often
 * the admitted jobs' *simulated* slowdowns actually meet their SLOs.
 *
 * The co-run set is piecewise constant between events, so the replay
 * walks the log, maintains the resident set, and after every change
 * evaluates each resident's achieved relative speed under the other
 * residents' bandwidth demands via `ExecutionModel::relativeSpeed`.
 * All standalone quantities (demand, rate at the assigned clock, rate
 * at the full clock) are recomputed from the execution model, not
 * trusted from the controller, so the report is an independent check
 * of the whole prediction chain.
 */

#ifndef PCCS_SCHED_ORACLE_HH
#define PCCS_SCHED_ORACLE_HH

#include <cstddef>
#include <span>

#include "sched/qos.hh"
#include "soc/soc_config.hh"

namespace pccs::sched {

/** Knobs of the oracle replay. */
struct OracleOptions
{
    /**
     * Relative headroom on the SLO comparison: a job violates only
     * when its simulated slowdown exceeds slo * (1 + tolerance).
     * Zero demands exact attainment.
     */
    double tolerance = 0.0;
};

/** Outcome of replaying one schedule. */
struct OracleReport
{
    /** Distinct co-run intervals evaluated. */
    std::size_t intervals = 0;
    /** Admitted jobs replayed. */
    std::size_t jobsChecked = 0;
    /** Per-(interval, resident) slowdown evaluations. */
    std::size_t checks = 0;
    /** Jobs whose simulated slowdown broke their SLO in any interval. */
    std::size_t violations = 0;
    /** Largest relative SLO excess seen, (slow - slo) / slo; >= 0. */
    double worstExcess = 0.0;

    /** Fraction of admitted jobs that met their SLO throughout. */
    double attainment() const
    {
        return jobsChecked == 0
                   ? 1.0
                   : 1.0 - static_cast<double>(violations) /
                               static_cast<double>(jobsChecked);
    }
};

/**
 * Replay `events` (a QosController's log, in order) on `config`'s
 * execution model and score SLO attainment.
 */
OracleReport validateSchedule(const soc::SocConfig &config,
                              std::span<const SchedEvent> events,
                              const OracleOptions &options = {});

} // namespace pccs::sched

#endif // PCCS_SCHED_ORACLE_HH
