#include "qos.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/logging.hh"
#include "pccs/builder.hh"

namespace pccs::sched {

namespace {

/**
 * Append one kernel's content to a class key (a marker byte for
 * nullopt). The key is an internal map index, so it stores the raw
 * bytes of the three doubles — bit-exact content addressing without
 * the cost of textual float formatting, which otherwise dominates the
 * whole admission decision.
 */
void
appendKernelKey(std::string &key,
                const std::optional<soc::KernelProfile> &kernel)
{
    if (!kernel) {
        key += '\1';
        return;
    }
    key += '\2';
    const double fields[3] = {kernel->intensity, kernel->locality,
                              kernel->workBytes};
    key.append(reinterpret_cast<const char *>(fields),
               sizeof(fields));
}

} // namespace

std::optional<AdmissionPolicy>
admissionPolicyFromName(std::string_view name)
{
    if (name == "strict" || name == "strict-slo")
        return AdmissionPolicy::StrictSlo;
    if (name == "best-effort")
        return AdmissionPolicy::BestEffort;
    if (name == "fairness" || name == "fairness-weighted")
        return AdmissionPolicy::FairnessWeighted;
    return std::nullopt;
}

const char *
admissionPolicyName(AdmissionPolicy policy)
{
    switch (policy) {
    case AdmissionPolicy::StrictSlo:
        return "strict";
    case AdmissionPolicy::BestEffort:
        return "best-effort";
    case AdmissionPolicy::FairnessWeighted:
        return "fairness";
    }
    return "?";
}

const char *
decisionKindName(DecisionKind kind)
{
    switch (kind) {
    case DecisionKind::Admitted:
        return "admitted";
    case DecisionKind::Queued:
        return "queued";
    case DecisionKind::Rejected:
        return "rejected";
    }
    return "?";
}

QosController::QosController(const soc::SocConfig &config,
                             runner::SweepEngine *engine,
                             SchedOptions options)
    : config_(config),
      engine_(engine ? engine : &runner::SweepEngine::global()),
      options_(options), sim_(config_)
{
    PCCS_ASSERT(!config_.pus.empty(), "scheduler needs a populated SoC");
    PCCS_ASSERT(options_.gridSteps >= 1, "gridSteps must be >= 1");
    PCCS_ASSERT(options_.puCapacity >= 1, "puCapacity must be >= 1");

    const std::size_t n = config_.pus.size();
    grids_.resize(n);
    models_.resize(n);
    residents_.resize(n);
    for (std::size_t p = 0; p < n; ++p) {
        // The same candidate ladder the explore paths sweep: evenly
        // spaced clocks from 30% of max, with the max itself last.
        const MHz fmax = config_.pus[p].maxFrequency;
        const MHz step = fmax / static_cast<double>(options_.gridSteps);
        for (MHz f = 0.3 * fmax; f < fmax; f += step)
            grids_[p].push_back(f);
        grids_[p].push_back(fmax);
    }
}

const model::PccsModel &
QosController::puModel(std::size_t pu)
{
    PCCS_ASSERT(pu < models_.size(), "bad PU index %zu", pu);
    if (!models_[pu]) {
        models_[pu] = std::make_unique<model::PccsModel>(
            model::buildModel(sim_, pu));
    }
    return *models_[pu];
}

std::size_t
QosController::internClass(const JobRequest &request)
{
    const std::size_t n = config_.pus.size();
    PCCS_ASSERT(request.options.empty() || request.options.size() == n,
                "per-PU options must parallel the PU list");

    std::string &key = keyScratch_;
    key.clear();
    for (std::size_t p = 0; p < n; ++p) {
        if (request.options.empty())
            appendKernelKey(key, request.kernel);
        else
            appendKernelKey(key, request.options[p]);
    }

    const auto it = classIds_.find(key);
    if (it != classIds_.end())
        return it->second;

    KernelClass cls;
    cls.key = key;
    cls.kernels.resize(n);
    for (std::size_t p = 0; p < n; ++p) {
        if (request.options.empty())
            cls.kernels[p] = request.kernel;
        else
            cls.kernels[p] = request.options[p];
    }
    cls.perPu.resize(n);
    classes_.push_back(std::move(cls));
    const std::size_t id = classes_.size() - 1;
    classIds_.emplace(std::move(key), id);
    return id;
}

void
QosController::buildGrid(const soc::KernelProfile &kernel,
                         std::size_t pu, GridCache &cache)
{
    // Stage 1 of DesignExplorer::corunPerformanceGrid, verbatim: the
    // standalone profile of every candidate clock, evaluated in
    // parallel and memoized on the shared engine cache — so scheduler
    // decisions and explorer queries over the same grid share points.
    const std::vector<MHz> &grid = grids_[pu];
    const std::size_t n = grid.size();
    cache.demand.resize(n);
    cache.rate.resize(n);
    engine_->parallelFor(n, [&](std::size_t i) {
        soc::SocConfig cfg = config_;
        cfg.pus[pu].frequency = grid[i];
        const soc::SocSimulator sim(std::move(cfg));
        const soc::StandaloneProfile solo =
            engine_->profile(sim, pu, kernel);
        cache.demand[i] = solo.bandwidthDemand;
        cache.rate[i] = solo.rate;
    });
    cache.built = true;
    cache.feasible = true;
}

QosController::GridCache &
QosController::gridCache(std::size_t class_id, std::size_t pu)
{
    KernelClass &cls = classes_[class_id];
    GridCache &cache = cls.perPu[pu];
    if (!cache.built) {
        if (cls.kernels[pu])
            buildGrid(*cls.kernels[pu], pu, cache);
        else
            cache.built = true; // feasible stays false: can't run here
    }
    return cache;
}

bool
QosController::corunPerformanceGrid(const JobRequest &request,
                                    std::size_t pu, GBps external,
                                    std::vector<double> &out)
{
    PCCS_ASSERT(pu < config_.pus.size(), "bad PU index %zu", pu);
    const std::size_t class_id = internClass(request);
    const GridCache &cache = gridCache(class_id, pu);
    if (!cache.feasible)
        return false;

    const std::size_t n = cache.demand.size();
    out.resize(n);
    rsGrid_.resize(n);
    puModel(pu).relativeSpeedBroadcast(cache.demand, external, rsGrid_);
    stats_.modelPoints += n;
    for (std::size_t i = 0; i < n; ++i)
        out[i] = cache.rate[i] * rsGrid_[i] / 100.0;
    return true;
}

QosController::Candidate
QosController::evaluateOn(std::size_t class_id, double slo,
                          std::size_t pu)
{
    Candidate cand;
    if (residents_[pu].size() >= options_.puCapacity)
        return cand;
    const GridCache &cache = gridCache(class_id, pu);
    if (!cache.feasible)
        return cand;

    const double margin = 1.0 + options_.safetyMargin;
    const std::size_t n = cache.demand.size();

    // The whole candidate ladder's slowdowns in one broadcast: the new
    // job's external demand is every resident's summed demand.
    rsGrid_.resize(n);
    puModel(pu).relativeSpeedBroadcast(cache.demand, totalDemand_,
                                       rsGrid_);
    stats_.modelPoints += n;

    const double full_rate = cache.rate.back();
    const auto slowdownAt = [&](std::size_t k) {
        const double perf = cache.rate[k] * rsGrid_[k] / 100.0;
        return perf > 0.0 ? full_rate / perf
                          : std::numeric_limits<double>::infinity();
    };

    // Lowest clock whose own slowdown fits (ties break to the lowest
    // index, like DesignSelection). Co-run performance is monotone
    // non-decreasing in the clock, so the lowest feasible clock also
    // minimizes the new job's demand — the gentlest choice for the
    // residents; if they can't absorb it, no higher clock helps.
    std::size_t k = n;
    for (std::size_t i = 0; i < n; ++i) {
        if (slowdownAt(i) * margin <= slo) {
            k = i;
            break;
        }
    }
    if (k == n) {
        if (options_.policy != AdmissionPolicy::BestEffort)
            return cand;
        k = n - 1; // full clock: minimize the damage, admit anyway
        cand.violatesSlo = true;
    }
    cand.predictedSlowdown = slowdownAt(k);

    double worst_slack = (slo - cand.predictedSlowdown) / slo;
    const GBps x_new = cache.demand[k];

    // Re-check every resident under the raised external demand, one
    // SoA batch per PU (models differ per PU).
    for (std::size_t q = 0; q < residents_.size(); ++q) {
        const std::vector<JobHandle> &res = residents_[q];
        if (res.empty())
            continue;
        resX_.resize(res.size());
        resY_.resize(res.size());
        resRs_.resize(res.size());
        for (std::size_t j = 0; j < res.size(); ++j) {
            const Job *job = jobs_.get(res[j]);
            resX_[j] = job->demand;
            resY_[j] =
                std::max(0.0, totalDemand_ - job->demand) + x_new;
        }
        puModel(q).relativeSpeedBatch(resX_, resY_, resRs_);
        stats_.modelPoints += res.size();
        for (std::size_t j = 0; j < res.size(); ++j) {
            const Job *job = jobs_.get(res[j]);
            const double perf = job->rate * resRs_[j] / 100.0;
            const double slow =
                perf > 0.0 ? job->fullRate / perf
                           : std::numeric_limits<double>::infinity();
            double budget = job->sloSlowdown;
            if (options_.policy == AdmissionPolicy::FairnessWeighted)
                budget *= options_.fairnessSlack;
            if (slow * margin > budget) {
                if (options_.policy != AdmissionPolicy::BestEffort)
                    return cand; // placement breaks a resident's SLO
                cand.violatesSlo = true; // admit anyway, but count it
            }
            worst_slack = std::min(
                worst_slack, (job->sloSlowdown - slow) / job->sloSlowdown);
        }
    }

    cand.found = true;
    cand.puIndex = pu;
    cand.freqIndex = k;
    cand.worstSlack = worst_slack;
    switch (options_.objective) {
    case model::PlacementObjective::MaxMinRelativeSpeed:
        cand.score = worst_slack;
        break;
    case model::PlacementObjective::MinMakespan: {
        const soc::KernelProfile &kernel =
            *classes_[class_id].kernels[pu];
        const double perf = cache.rate[k] * rsGrid_[k] / 100.0;
        cand.score = perf > 0.0
                         ? -(kernel.workBytes / perf)
                         : -std::numeric_limits<double>::infinity();
        break;
    }
    }
    return cand;
}

Decision
QosController::admit(const JobRequest &request, std::size_t class_id,
                     const Candidate &candidate)
{
    const std::size_t pu = candidate.puIndex;
    const GridCache &cache = classes_[class_id].perPu[pu];

    const JobHandle handle = jobs_.acquire();
    Job &job = *jobs_.get(handle);
    job.name = request.name;
    job.classId = class_id;
    job.kernel = *classes_[class_id].kernels[pu];
    job.puIndex = pu;
    job.freqIndex = candidate.freqIndex;
    job.frequencyMhz = grids_[pu][candidate.freqIndex];
    job.demand = cache.demand[candidate.freqIndex];
    job.rate = cache.rate[candidate.freqIndex];
    job.fullRate = cache.rate.back();
    job.sloSlowdown = request.sloSlowdown;
    job.deadlineSeconds = request.deadlineSeconds;
    job.predictedSlowdown = candidate.predictedSlowdown;
    job.seq = nextSeq_++;

    residents_[pu].push_back(handle);
    totalDemand_ += job.demand;
    refreshResidents();

    ++stats_.admitted;
    if (candidate.violatesSlo)
        ++stats_.expectedViolations;

    if (options_.recordEvents) {
        SchedEvent ev;
        ev.kind = SchedEvent::Kind::Admit;
        ev.seq = job.seq;
        ev.puIndex = pu;
        ev.frequencyMhz = job.frequencyMhz;
        ev.kernel = job.kernel;
        ev.demand = job.demand;
        ev.rate = job.rate;
        ev.fullRate = job.fullRate;
        ev.sloSlowdown = job.sloSlowdown;
        events_.push_back(std::move(ev));
    }

    Decision d;
    d.kind = DecisionKind::Admitted;
    d.handle = handle;
    d.puIndex = pu;
    d.frequencyMhz = job.frequencyMhz;
    d.predictedSlowdown = job.predictedSlowdown;
    d.worstSlack = candidate.worstSlack;
    return d;
}

Decision
QosController::decide(const JobRequest &request, std::size_t class_id)
{
    ++stats_.decisions;
    PCCS_ASSERT(request.puIndex < 0 ||
                    static_cast<std::size_t>(request.puIndex) <
                        config_.pus.size(),
                "pinned PU index %d out of range", request.puIndex);

    Candidate best;
    std::size_t at_capacity = 0, considered = 0;
    const std::size_t n = config_.pus.size();
    for (std::size_t p = 0; p < n; ++p) {
        if (request.puIndex >= 0 &&
            p != static_cast<std::size_t>(request.puIndex))
            continue;
        ++considered;
        if (residents_[p].size() >= options_.puCapacity) {
            ++at_capacity;
            continue;
        }
        const Candidate cand =
            evaluateOn(class_id, request.sloSlowdown, p);
        // Strict > keeps the lowest PU index on equal scores.
        if (cand.found && (!best.found || cand.score > best.score))
            best = cand;
    }

    if (best.found)
        return admit(request, class_id, best);

    Decision d;
    d.kind = DecisionKind::Queued;
    d.reason = at_capacity == considered
                   ? "all candidate PUs at capacity"
                   : "no placement keeps every SLO";
    return d;
}

Decision
QosController::submit(const JobRequest &request)
{
    ++stats_.submitted;
    const std::size_t class_id = internClass(request);
    Decision d = decide(request, class_id);
    if (d.kind == DecisionKind::Admitted)
        return d;

    if (queue_.size() >= options_.maxQueued) {
        d.kind = DecisionKind::Rejected;
        d.reason += "; queue full";
        ++stats_.rejected;
        return d;
    }
    queue_.push_back(QueuedJob{request, class_id});
    ++stats_.queued;
    return d;
}

Completion
QosController::complete(JobHandle handle)
{
    Completion result;
    const Job *job = jobs_.get(handle);
    if (job == nullptr)
        return result;
    result.ok = true;
    ++stats_.completed;

    const std::size_t pu = job->puIndex;
    const std::uint64_t seq = job->seq;
    // Clamp: the running sum cancels to -0.0 (or an epsilon below
    // zero) when the last resident departs, and the model rejects
    // negative demands.
    totalDemand_ = std::max(0.0, totalDemand_ - job->demand);
    auto &res = residents_[pu];
    res.erase(std::find(res.begin(), res.end(), handle));
    jobs_.release(handle);

    if (options_.recordEvents) {
        SchedEvent ev;
        ev.kind = SchedEvent::Kind::Complete;
        ev.seq = seq;
        ev.puIndex = pu;
        events_.push_back(std::move(ev));
    }

    refreshResidents();

    // Promote in FIFO order, stopping at the first job that still does
    // not fit — the queue stays a queue, nothing jumps it.
    while (!queue_.empty()) {
        QueuedJob &head = queue_.front();
        Decision d = decide(head.request, head.classId);
        if (d.kind != DecisionKind::Admitted)
            break;
        ++stats_.promoted;
        result.promoted.push_back(std::move(d));
        queue_.pop_front();
    }
    return result;
}

void
QosController::refreshResidents()
{
    for (std::size_t q = 0; q < residents_.size(); ++q) {
        const std::vector<JobHandle> &res = residents_[q];
        if (res.empty())
            continue;
        resX_.resize(res.size());
        resY_.resize(res.size());
        resRs_.resize(res.size());
        for (std::size_t j = 0; j < res.size(); ++j) {
            const Job *job = jobs_.get(res[j]);
            resX_[j] = job->demand;
            // The running sum cancels to -0.0 (or an epsilon below)
            // when the last co-runner departs; the model rejects
            // negative demands, so clamp.
            resY_[j] = std::max(0.0, totalDemand_ - job->demand);
        }
        puModel(q).relativeSpeedBatch(resX_, resY_, resRs_);
        stats_.modelPoints += res.size();
        for (std::size_t j = 0; j < res.size(); ++j) {
            Job *job = jobs_.get(res[j]);
            const double perf = job->rate * resRs_[j] / 100.0;
            job->predictedSlowdown =
                perf > 0.0 ? job->fullRate / perf
                           : std::numeric_limits<double>::infinity();
        }
    }
}

} // namespace pccs::sched
