#include "job_table.hh"

namespace pccs::sched {

JobTable::Slot *
JobTable::slotFor(JobHandle handle)
{
    const std::uint32_t index =
        static_cast<std::uint32_t>(handle & 0xffffffffu);
    const std::uint32_t gen =
        static_cast<std::uint32_t>(handle >> 32);
    if (gen == 0)
        return nullptr;
    const std::size_t chunk = index / kChunk;
    if (chunk >= chunks_.size())
        return nullptr;
    Slot &slot = (*chunks_[chunk])[index % kChunk];
    if (!slot.inUse || slot.gen != gen)
        return nullptr;
    return &slot;
}

const JobTable::Slot *
JobTable::slotFor(JobHandle handle) const
{
    return const_cast<JobTable *>(this)->slotFor(handle);
}

JobHandle
JobTable::acquire()
{
    if (freeSlots_.empty()) {
        const std::uint32_t base =
            static_cast<std::uint32_t>(chunks_.size() * kChunk);
        chunks_.push_back(
            std::make_unique<std::array<Slot, kChunk>>());
        auto &chunk = *chunks_.back();
        for (std::size_t i = kChunk; i-- > 0;) {
            chunk[i].index = base + static_cast<std::uint32_t>(i);
            freeSlots_.push_back(chunk[i].index);
        }
    }
    const std::uint32_t index = freeSlots_.back();
    freeSlots_.pop_back();
    Slot &slot = (*chunks_[index / kChunk])[index % kChunk];
    // Generation 0 is reserved for the null handle; skip it on wrap.
    if (++slot.gen == 0)
        ++slot.gen;
    slot.inUse = true;
    ++live_;
    return makeHandle(slot.gen, index);
}

Job *
JobTable::get(JobHandle handle)
{
    Slot *slot = slotFor(handle);
    return slot != nullptr ? &slot->job : nullptr;
}

const Job *
JobTable::get(JobHandle handle) const
{
    const Slot *slot = slotFor(handle);
    return slot != nullptr ? &slot->job : nullptr;
}

bool
JobTable::release(JobHandle handle)
{
    Slot *slot = slotFor(handle);
    if (slot == nullptr)
        return false;
    slot->inUse = false;
    // Bump now, not on reuse: every copy of the handle goes stale the
    // moment the job completes.
    if (++slot->gen == 0)
        ++slot->gen;
    freeSlots_.push_back(slot->index);
    --live_;
    return true;
}

} // namespace pccs::sched
