/**
 * @file
 * The closed-loop contention-aware QoS scheduler: an online
 * admission-and-placement controller that turns PCCS slowdown
 * predictions into scheduling decisions, the way the MISE line of
 * work drives QoS from slowdown estimates.
 *
 * Jobs arrive as (kernel profile, slowdown SLO, optional deadline).
 * For each arrival the controller picks a {PU, frequency} pair via
 * the same batched evaluation paths the design explorer uses — the
 * standalone profiles of every candidate clock come from one memoized
 * parallel sweep (corunPerformanceGrid stage 1) and the whole grid's
 * slowdowns from one SoA `relativeSpeedBroadcast` call — and admits
 * the job only if its own predicted slowdown and every resident job's
 * predicted slowdown stay within their SLOs. Arrivals that do not fit
 * wait in a bounded FIFO queue and are promoted on departures;
 * arrivals that find the queue full are rejected.
 *
 * Contention semantics: a resident job's model input is
 * x = its standalone bandwidth demand at its assigned clock, and
 * y = the summed standalone demands of every *other* resident job —
 * the processor-centric formulation of the paper. With the default
 * capacity of one job per PU this is exactly the scenario the SoC
 * simulator grounds (one kernel per PU over the shared memory
 * system), which is what lets `sched::validateSchedule` replay an
 * accepted schedule through the simulator and measure the true
 * SLO-violation rate.
 *
 * The per-decision work is incremental: per-kernel-class frequency
 * grids (demands and rates) are computed once and cached, so a
 * decision costs one broadcast over the candidate PU's grid plus one
 * small SoA `relativeSpeedBatch` per PU with residents — no simulator
 * calls, no allocation in steady state.
 */

#ifndef PCCS_SCHED_QOS_HH
#define PCCS_SCHED_QOS_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "pccs/model.hh"
#include "pccs/placement.hh"
#include "runner/sweep_engine.hh"
#include "sched/job_table.hh"
#include "soc/simulator.hh"

namespace pccs::sched {

/** How strictly admission defends the slowdown SLOs. */
enum class AdmissionPolicy {
    /** Admit only when every SLO (new and resident) holds. */
    StrictSlo,
    /** Admit whenever a PU has capacity; count expected misses. */
    BestEffort,
    /** New job strict; residents may stretch to slack * SLO
     *  (MISE-QoS style: protect the arrival, bound the damage). */
    FairnessWeighted,
};

/** @return the policy for a wire name, or nullopt when unknown. */
std::optional<AdmissionPolicy>
admissionPolicyFromName(std::string_view name);

/** @return the wire name of a policy ("strict", "best-effort", ...). */
const char *admissionPolicyName(AdmissionPolicy policy);

/** Configuration of a QosController. */
struct SchedOptions
{
    AdmissionPolicy policy = AdmissionPolicy::StrictSlo;
    /** PU choice among feasible candidates. */
    model::PlacementObjective objective =
        model::PlacementObjective::MaxMinRelativeSpeed;
    /** Frequency-grid points per PU (plus the max clock itself). */
    unsigned gridSteps = 16;
    /** Resident jobs per PU; 1 matches the simulator's protocol. */
    std::size_t puCapacity = 1;
    /** Waiting jobs before arrivals are rejected outright. */
    std::size_t maxQueued = 64;
    /**
     * Admission safety margin: predicted slowdowns are inflated by
     * this fraction before the SLO comparison, absorbing the model's
     * few-percent error against the simulator ground truth.
     */
    double safetyMargin = 0.0;
    /** FairnessWeighted: residents may reach slack * their SLO. */
    double fairnessSlack = 1.15;
    /** Record the admit/complete event log for oracle replay. */
    bool recordEvents = true;
};

/** One arrival: what to run and how much slowdown it tolerates. */
struct JobRequest
{
    /** Client label (diagnostics; empty is fine). */
    std::string name;
    /**
     * The kernel, either uniform across PUs (`kernel`) or per PU
     * (`options`, parallel to SocConfig::pus, nullopt marking PUs
     * that cannot run this job — e.g. Rodinia kernels on the DLA).
     * When `options` is non-empty it wins.
     */
    soc::KernelProfile kernel;
    std::vector<std::optional<soc::KernelProfile>> options;
    /** Max tolerated slowdown factor vs full-clock standalone, >= 1. */
    double sloSlowdown = 1.5;
    /** Optional deadline, seconds (0 = none; recorded, not enforced). */
    double deadlineSeconds = 0.0;
    /** Pin to one PU index, or -1 to let the controller place. */
    int puIndex = -1;
};

/** What the controller decided about one arrival. */
enum class DecisionKind { Admitted, Queued, Rejected };

/** @return the wire name of a decision ("admitted", ...). */
const char *decisionKindName(DecisionKind kind);

/** Outcome of one submit (or one queue promotion). */
struct Decision
{
    DecisionKind kind = DecisionKind::Rejected;
    /** Valid when admitted. */
    JobHandle handle = kNoJob;
    std::size_t puIndex = 0;
    MHz frequencyMhz = 0.0;
    /** Predicted slowdown of the admitted job (with no margin). */
    double predictedSlowdown = 0.0;
    /** min over SLO-holders of (slo - predicted)/slo after admit. */
    double worstSlack = 0.0;
    /** Diagnostic for queued/rejected outcomes. */
    std::string reason;
};

/** Outcome of completing a job. */
struct Completion
{
    /** False when the handle was stale (already completed). */
    bool ok = false;
    /** Queued jobs admitted by the departure, in queue order. */
    std::vector<Decision> promoted;
};

/** One entry of the oracle-replayable schedule log. */
struct SchedEvent
{
    enum class Kind { Admit, Complete } kind = Kind::Admit;
    /** Job sequence number (pairs Admit with its Complete). */
    std::uint64_t seq = 0;
    /** @name Admit payload (snapshot of the placed job) @{ */
    std::size_t puIndex = 0;
    MHz frequencyMhz = 0.0;
    soc::KernelProfile kernel;
    GBps demand = 0.0;
    double rate = 0.0;
    double fullRate = 0.0;
    double sloSlowdown = 1.0;
    /** @} */
};

/** Monotone counters of one controller. */
struct SchedStats
{
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t queued = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t promoted = 0;
    /** Admission decisions evaluated (submits + promotion retries). */
    std::uint64_t decisions = 0;
    /** SoA model points evaluated across all decisions. */
    std::uint64_t modelPoints = 0;
    /** BestEffort admissions whose predicted slowdown missed an SLO. */
    std::uint64_t expectedViolations = 0;
};

/**
 * The admission-and-placement controller of one SoC. Not thread-safe;
 * callers (the serve dispatcher, the CLI, benches) serialize access.
 */
class QosController
{
  public:
    /**
     * @param config the SoC whose PUs are scheduled
     * @param engine evaluation engine for the grid precomputes (the
     *        process-wide engine when null)
     */
    explicit QosController(const soc::SocConfig &config,
                           runner::SweepEngine *engine = nullptr,
                           SchedOptions options = {});

    /** Decide one arrival: admit (placing it), queue, or reject. */
    Decision submit(const JobRequest &request);

    /** Complete a resident job, promoting queued jobs that now fit. */
    Completion complete(JobHandle handle);

    /** @return the resident job, or nullptr for stale handles. */
    const Job *job(JobHandle handle) const { return jobs_.get(handle); }

    /** Resident jobs. */
    std::size_t residentCount() const { return jobs_.size(); }

    /** Waiting (queued) jobs. */
    std::size_t queuedCount() const { return queue_.size(); }

    /** Summed standalone demand of all residents, GB/s. */
    GBps totalDemand() const { return totalDemand_; }

    /** Resident jobs on PU `pu`. */
    const std::vector<JobHandle> &residents(std::size_t pu) const
    {
        return residents_[pu];
    }

    const SchedStats &stats() const { return stats_; }
    const SchedOptions &options() const { return options_; }
    const soc::SocConfig &config() const { return config_; }

    /** The admit/complete log (empty when recordEvents is off). */
    const std::vector<SchedEvent> &events() const { return events_; }

    /** The candidate clock grid of PU `pu` (ascending, max last). */
    const std::vector<MHz> &frequencyGrid(std::size_t pu) const
    {
        return grids_[pu];
    }

    /** The PU's slowdown model (calibrated lazily, then cached). */
    const model::PccsModel &puModel(std::size_t pu);

    /**
     * Predicted co-run performance (bytes/s) of `request`'s kernel at
     * every clock of PU `pu`'s grid under `external` GB/s — the
     * batched primitive every admission decision runs on. Bit-exact
     * with `DesignExplorer::corunPerformanceGrid` over the same grid
     * and model (tests enforce the parity).
     * @return false when the request cannot run on that PU
     */
    bool corunPerformanceGrid(const JobRequest &request,
                              std::size_t pu, GBps external,
                              std::vector<double> &out);

    /** Visit every resident job. */
    template <typename Fn> void forEachJob(Fn &&fn) const
    {
        jobs_.forEach(fn);
    }

  private:
    /** Cached per-(class, PU) frequency-grid characterization. */
    struct GridCache
    {
        bool built = false;
        bool feasible = false;
        /** Standalone demand per grid clock, GB/s. */
        std::vector<GBps> demand;
        /** Standalone rate per grid clock, bytes/s. */
        std::vector<double> rate;
    };

    /** One interned kernel class. */
    struct KernelClass
    {
        std::string key;
        /** Per-PU kernel (nullopt = cannot run there). */
        std::vector<std::optional<soc::KernelProfile>> kernels;
        std::vector<GridCache> perPu;
    };

    /** A queued arrival. */
    struct QueuedJob
    {
        JobRequest request;
        std::size_t classId = 0;
    };

    /** Scored candidate placement of one decision. */
    struct Candidate
    {
        bool found = false;
        std::size_t puIndex = 0;
        std::size_t freqIndex = 0;
        double predictedSlowdown = 0.0;
        double worstSlack = 0.0;
        double score = 0.0;
        bool violatesSlo = false;
    };

    std::size_t internClass(const JobRequest &request);
    GridCache &gridCache(std::size_t class_id, std::size_t pu);
    void buildGrid(const soc::KernelProfile &kernel, std::size_t pu,
                   GridCache &cache);

    /** Evaluate one placement candidate on PU `pu` (no mutation). */
    Candidate evaluateOn(std::size_t class_id, double slo,
                         std::size_t pu);

    /** The decision core shared by submit and queue promotion. */
    Decision decide(const JobRequest &request, std::size_t class_id);

    /** Materialize an admitted candidate into the job table. */
    Decision admit(const JobRequest &request, std::size_t class_id,
                   const Candidate &candidate);

    /** Refresh every resident's predicted slowdown (batched per PU). */
    void refreshResidents();

    soc::SocConfig config_;
    runner::SweepEngine *engine_;
    SchedOptions options_;
    soc::SocSimulator sim_;

    std::vector<std::vector<MHz>> grids_;
    std::vector<std::unique_ptr<model::PccsModel>> models_;

    /** Transparent comparator: lookups by string_view don't allocate. */
    std::map<std::string, std::size_t, std::less<>> classIds_;
    std::vector<KernelClass> classes_;

    JobTable jobs_;
    std::vector<std::vector<JobHandle>> residents_;
    GBps totalDemand_ = 0.0;
    std::deque<QueuedJob> queue_;

    std::uint64_t nextSeq_ = 1;
    SchedStats stats_;
    std::vector<SchedEvent> events_;

    /** @name decision scratch (reused; no steady-state allocation) @{ */
    std::vector<double> rsGrid_;
    std::vector<double> resX_, resY_, resRs_;
    std::string keyScratch_;
    /** @} */
};

} // namespace pccs::sched

#endif // PCCS_SCHED_QOS_HH
