#include "oracle.hh"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "soc/exec_model.hh"

namespace pccs::sched {

namespace {

/** One resident job as the oracle sees it (model-recomputed). */
struct Resident
{
    std::uint64_t seq = 0;
    std::size_t puIndex = 0;
    soc::PuParams pu;
    soc::KernelProfile kernel;
    GBps demand = 0.0;
    double rate = 0.0;
    double fullRate = 0.0;
    double sloSlowdown = 1.0;
    bool violated = false;
};

} // namespace

OracleReport
validateSchedule(const soc::SocConfig &config,
                 std::span<const SchedEvent> events,
                 const OracleOptions &options)
{
    const soc::ExecutionModel model(config.memory);
    OracleReport report;

    std::vector<Resident> residents;
    // A job can violate in any of several intervals; remember which
    // seqs already violated so each job counts once.
    std::unordered_map<std::uint64_t, bool> violated;

    std::vector<soc::BandwidthDemand> externals;
    const auto evaluateInterval = [&]() {
        if (residents.empty())
            return;
        // Even a lone resident is checked: the clock the controller
        // assigned already costs fullRate / rate of slowdown.
        ++report.intervals;
        for (Resident &r : residents) {
            externals.clear();
            for (const Resident &other : residents) {
                if (other.seq == r.seq)
                    continue;
                externals.push_back(soc::BandwidthDemand{
                    other.demand, other.kernel.locality,
                    other.pu.fairShareWeight});
            }
            const double rs =
                model.relativeSpeed(r.pu, r.kernel, externals);
            const double perf = r.rate * rs / 100.0;
            const double slow = perf > 0.0 ? r.fullRate / perf : 1e300;
            ++report.checks;
            const double excess =
                (slow - r.sloSlowdown) / r.sloSlowdown;
            report.worstExcess = std::max(report.worstExcess, excess);
            if (slow > r.sloSlowdown * (1.0 + options.tolerance)) {
                r.violated = true;
                violated[r.seq] = true;
            }
        }
    };

    for (const SchedEvent &ev : events) {
        if (ev.kind == SchedEvent::Kind::Admit) {
            PCCS_ASSERT(ev.puIndex < config.pus.size(),
                        "event PU index %zu out of range", ev.puIndex);
            Resident r;
            r.seq = ev.seq;
            r.puIndex = ev.puIndex;
            r.pu = config.pus[ev.puIndex].atFrequency(ev.frequencyMhz);
            r.kernel = ev.kernel;
            // Recompute every standalone quantity from the execution
            // model: the report must not trust controller numbers.
            const soc::StandaloneProfile solo =
                model.standalone(r.pu, r.kernel);
            const soc::StandaloneProfile full = model.standalone(
                config.pus[ev.puIndex], r.kernel);
            r.demand = solo.bandwidthDemand;
            r.rate = solo.rate;
            r.fullRate = full.rate;
            r.sloSlowdown = ev.sloSlowdown;
            residents.push_back(std::move(r));
            ++report.jobsChecked;
            violated.emplace(ev.seq, false);
        } else {
            const auto it = std::find_if(
                residents.begin(), residents.end(),
                [&](const Resident &r) { return r.seq == ev.seq; });
            PCCS_ASSERT(it != residents.end(),
                        "complete event for unknown seq %llu",
                        static_cast<unsigned long long>(ev.seq));
            residents.erase(it);
        }
        evaluateInterval();
    }

    for (const auto &[seq, bad] : violated)
        report.violations += bad ? 1 : 0;
    return report;
}

} // namespace pccs::sched
