/**
 * @file
 * The job table of the QoS scheduler: an arena-backed slab of resident
 * jobs addressed by generation-tagged handles.
 *
 * The design mirrors the serve event loop's connection slab (DESIGN.md
 * section 13): jobs live in chunked, address-stable storage (no
 * reallocation ever moves a live job), freed slots are recycled
 * through a free list, and every recycle bumps the slot's generation
 * so a stale handle — a client completing the same job twice, or
 * completing a job whose slot was reused — fails the lookup instead
 * of silently touching another job. A handle packs
 * `(generation << 32) | slot`; generation 0 is never issued, so the
 * zero handle is a universal "no job" sentinel.
 */

#ifndef PCCS_SCHED_JOB_TABLE_HH
#define PCCS_SCHED_JOB_TABLE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "soc/kernel.hh"

namespace pccs::sched {

/** Generation-tagged job reference: (generation << 32) | slot. */
using JobHandle = std::uint64_t;

/** The never-issued handle (generation 0): "no job". */
inline constexpr JobHandle kNoJob = 0;

/** One admitted job resident on a PU of the managed SoC. */
struct Job
{
    /** Client-supplied label (diagnostics only). */
    std::string name;
    /** Kernel-class index in the controller's class table. */
    std::size_t classId = 0;
    /** The kernel actually running (resolved for the assigned PU). */
    soc::KernelProfile kernel;

    /** Assigned PU (index into SocConfig::pus). */
    std::size_t puIndex = 0;
    /** Index of the selected frequency in the PU's grid. */
    std::size_t freqIndex = 0;
    /** Selected clock, MHz. */
    MHz frequencyMhz = 0.0;

    /** Standalone bandwidth demand at the selected clock, GB/s. */
    GBps demand = 0.0;
    /** Standalone execution rate at the selected clock, bytes/s. */
    double rate = 0.0;
    /** Standalone rate at the full clock (the SLO reference). */
    double fullRate = 0.0;

    /** Admitted slowdown budget (>= 1) vs the full-clock standalone. */
    double sloSlowdown = 1.0;
    /** Optional completion deadline, seconds (0 = none). */
    double deadlineSeconds = 0.0;
    /** Latest PCCS-predicted slowdown under the current co-run set. */
    double predictedSlowdown = 1.0;

    /** Admission sequence number (keys the oracle event log). */
    std::uint64_t seq = 0;
};

/**
 * Chunked, generation-tagged storage of resident jobs. Not
 * thread-safe by itself — the controller (or the serve dispatcher's
 * per-SoC mutex) serializes access, exactly like the per-shard
 * connection slab.
 */
class JobTable
{
  public:
    /** Slots per chunk (matches the serve connection slab). */
    static constexpr std::size_t kChunk = 256;

    /**
     * Claim a slot and return its handle. The slot's Job keeps its
     * capacity from previous occupants (strings and vectors are
     * reused, not reallocated), so callers must overwrite every field
     * they care about.
     */
    JobHandle acquire();

    /** @return the live job behind `handle`, or nullptr when stale. */
    Job *get(JobHandle handle);
    const Job *get(JobHandle handle) const;

    /**
     * Release a live job's slot back to the free list, bumping its
     * generation so the handle (and any copy of it) goes stale.
     * @return false when the handle was already stale
     */
    bool release(JobHandle handle);

    /** Live (resident) jobs. */
    std::size_t size() const { return live_; }

    /** Slots ever allocated (capacity high-water mark). */
    std::size_t capacity() const { return chunks_.size() * kChunk; }

    /** Visit every live job in slot order. */
    template <typename Fn> void forEach(Fn &&fn) const
    {
        for (const auto &chunk : chunks_) {
            for (const Slot &slot : *chunk) {
                if (slot.inUse)
                    fn(makeHandle(slot.gen, slot.index), slot.job);
            }
        }
    }

  private:
    struct Slot
    {
        Job job;
        std::uint32_t gen = 0;
        std::uint32_t index = 0;
        bool inUse = false;
    };

    static JobHandle makeHandle(std::uint32_t gen, std::uint32_t slot)
    {
        return (static_cast<JobHandle>(gen) << 32) | slot;
    }

    Slot *slotFor(JobHandle handle);
    const Slot *slotFor(JobHandle handle) const;

    /** Address-stable storage: chunks never move once allocated. */
    std::vector<std::unique_ptr<std::array<Slot, kChunk>>> chunks_;
    std::vector<std::uint32_t> freeSlots_;
    std::size_t live_ = 0;
};

} // namespace pccs::sched

#endif // PCCS_SCHED_JOB_TABLE_HH
