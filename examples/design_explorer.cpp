/**
 * @file
 * Pre-silicon design-space exploration (Sections 3.4 / 4.3): how far
 * can the GPU be down-clocked -- and how many of its cores removed --
 * while a clustering kernel keeps its co-run performance within 5% of
 * the full configuration, under realistic external memory pressure?
 *
 * A more accurate slowdown model picks a cheaper configuration that
 * still truly meets the requirement; an optimistic model (Gables)
 * over-provisions. The paper reports savings of up to 52.1% of the
 * power budget (frequency) or 50% of area (cores).
 */

#include <cstdio>
#include <vector>

#include "gables/gables.hh"
#include "pccs/builder.hh"
#include "pccs/design.hh"
#include "workloads/rodinia.hh"

using namespace pccs;

int
main()
{
    const soc::SocConfig soc = soc::xavierLike();
    const soc::SocSimulator board(soc);
    const std::size_t gpu = static_cast<std::size_t>(
        soc.puIndex(soc::PuKind::Gpu));
    const soc::KernelProfile kernel =
        workloads::rodiniaKernel("streamcluster", soc::PuKind::Gpu);

    const model::PccsModel pccs = model::buildModel(board, gpu);
    const gables::GablesModel gables(soc.memory.peakBandwidth);
    const model::DesignExplorer explorer(soc);

    std::vector<double> freq_grid;
    for (double f = 420.0; f <= 1377.0; f += 20.0)
        freq_grid.push_back(f);
    freq_grid.push_back(1377.0);
    const std::vector<double> core_grid{0.25, 0.375, 0.5, 0.625, 0.75,
                                        0.875, 1.0};
    constexpr double allowed = 5.0; // percent co-run slowdown budget

    std::printf("Design question: lowest GPU clock / core count whose "
                "co-run performance of '%s'\nstays within %.0f%% of "
                "the full configuration, per external demand level.\n\n",
                kernel.name.c_str(), allowed);

    std::printf("%-18s %14s %14s %14s\n", "external (GB/s)",
                "ground truth", "PCCS", "Gables");
    for (double y : {10.0, 20.0, 40.0, 60.0, 80.0}) {
        const auto truth = explorer.selectFrequencyActual(
            gpu, kernel, y, allowed, freq_grid);
        const auto via_pccs = explorer.selectFrequency(
            gpu, kernel, y, allowed, pccs, freq_grid);
        const auto via_gables = explorer.selectFrequency(
            gpu, kernel, y, allowed, gables, freq_grid);
        std::printf("%-18.0f %11.0f MHz %11.0f MHz %11.0f MHz\n", y,
                    truth.value, via_pccs.value, via_gables.value);
    }

    std::printf("\nCore-count exploration at 60 GB/s external "
                "demand:\n");
    const auto cores_pccs = explorer.selectCoreScale(
        gpu, kernel, 60.0, allowed, pccs, core_grid);
    const auto cores_gables = explorer.selectCoreScale(
        gpu, kernel, 60.0, allowed, gables, core_grid);
    std::printf("  PCCS:   keep %.0f%% of the GPU's cores "
                "(area saving: %.0f%%)\n",
                100.0 * cores_pccs.value,
                100.0 * (1.0 - cores_pccs.value));
    std::printf("  Gables: keep %.0f%% of the GPU's cores "
                "(area saving: %.0f%%)\n",
                100.0 * cores_gables.value,
                100.0 * (1.0 - cores_gables.value));

    std::printf("\nInterpretation: under memory contention, the "
                "memory grant -- not the clock or core count --\n"
                "bounds a memory-intensive kernel's co-run "
                "performance. PCCS sees this and down-sizes the GPU;\n"
                "Gables predicts no contention below the bandwidth "
                "peak and over-provisions (the paper's Table 9).\n");
    return 0;
}
