/**
 * @file
 * The paper's Figure 1 motivating scenario: an autonomous-vehicle
 * workload with three concurrent modules that must be placed on the
 * SoC's processing units:
 *
 *   - object recognition  (a CNN; must run on the DLA)
 *   - trajectory update   (a stencil kernel; CPU or GPU)
 *   - sensor clustering   (a clustering kernel; CPU or GPU)
 *
 * PCCS is used to evaluate both placements of the two flexible
 * modules *without co-run measurements*, and the chosen placement is
 * validated against the co-run simulator (which plays the role of the
 * real board).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "pccs/builder.hh"
#include "pccs/phases.hh"
#include "soc/simulator.hh"
#include "workloads/nn.hh"
#include "workloads/rodinia.hh"

using namespace pccs;

namespace {

struct Module
{
    std::string name;
    soc::PhasedWorkload onCpu;
    soc::PhasedWorkload onGpu;
};

/** Time-weighted mean standalone demand of a workload on a PU. */
double
meanDemand(const soc::SocSimulator &sim, std::size_t pu,
           const soc::PhasedWorkload &w)
{
    double total_s = 0.0, demand = 0.0;
    for (const auto &ph : w.phases)
        total_s += sim.profile(pu, ph).seconds;
    for (const auto &ph : w.phases) {
        const auto prof = sim.profile(pu, ph);
        demand += (prof.seconds / total_s) * prof.bandwidthDemand;
    }
    return demand;
}

} // namespace

int
main()
{
    const soc::SocConfig soc = soc::xavierLike();
    const soc::SocSimulator board(soc);
    const std::size_t cpu = static_cast<std::size_t>(
        soc.puIndex(soc::PuKind::Cpu));
    const std::size_t gpu = static_cast<std::size_t>(
        soc.puIndex(soc::PuKind::Gpu));
    const std::size_t dla = static_cast<std::size_t>(
        soc.puIndex(soc::PuKind::Dla));

    std::printf("Autonomous-vehicle workload placement on %s\n\n",
                soc.name.c_str());

    // The fixed module: object recognition on the DLA.
    const soc::PhasedWorkload recognition = workloads::resnet50Dla();

    // The two flexible modules, with per-PU-kind implementations.
    const Module trajectory{
        "trajectory-update",
        soc::PhasedWorkload::single(
            workloads::rodiniaKernel("srad", soc::PuKind::Cpu)),
        soc::PhasedWorkload::single(
            workloads::rodiniaKernel("srad", soc::PuKind::Gpu))};
    const Module clustering{
        "sensor-clustering",
        soc::PhasedWorkload::single(workloads::rodiniaKernel(
            "streamcluster", soc::PuKind::Cpu)),
        soc::PhasedWorkload::single(workloads::rodiniaKernel(
            "streamcluster", soc::PuKind::Gpu))};

    // Per-PU slowdown models, built from calibrators only.
    const model::PccsModel m_cpu = model::buildModel(board, cpu);
    const model::PccsModel m_gpu = model::buildModel(board, gpu);
    const model::PccsModel m_dla = model::buildModel(board, dla);

    // Evaluate both placements with PCCS: the end-to-end metric is the
    // worst per-module relative speed (the pipeline is as slow as its
    // slowest stage).
    struct Option
    {
        const Module *onCpu;
        const Module *onGpu;
    };
    const Option options[2] = {{&trajectory, &clustering},
                               {&clustering, &trajectory}};

    int best = -1;
    double best_score = -1.0;
    for (int o = 0; o < 2; ++o) {
        const soc::PhasedWorkload &w_cpu = options[o].onCpu->onCpu;
        const soc::PhasedWorkload &w_gpu = options[o].onGpu->onGpu;

        const double d_cpu = meanDemand(board, cpu, w_cpu);
        const double d_gpu = meanDemand(board, gpu, w_gpu);
        const double d_dla = meanDemand(board, dla, recognition);

        const double rs_cpu =
            m_cpu.relativeSpeed(d_cpu, d_gpu + d_dla);
        const double rs_gpu =
            m_gpu.relativeSpeed(d_gpu, d_cpu + d_dla);
        const double rs_dla =
            m_dla.relativeSpeed(d_dla, d_cpu + d_gpu);
        const double worst =
            std::min(rs_cpu, std::min(rs_gpu, rs_dla));

        std::printf("placement %d: %s on CPU (x=%.1f), %s on GPU "
                    "(x=%.1f), %s on DLA (x=%.1f)\n",
                    o + 1, options[o].onCpu->name.c_str(), d_cpu,
                    options[o].onGpu->name.c_str(), d_gpu,
                    recognition.name.c_str(), d_dla);
        std::printf("  PCCS predicted relative speeds: CPU %.1f%%, "
                    "GPU %.1f%%, DLA %.1f%% -> pipeline %.1f%%\n",
                    rs_cpu, rs_gpu, rs_dla, worst);
        if (worst > best_score) {
            best_score = worst;
            best = o;
        }
    }
    std::printf("\nPCCS picks placement %d.\n\n", best + 1);

    // Validate both placements on the simulated board.
    for (int o = 0; o < 2; ++o) {
        const soc::CorunOutcome out = board.run(
            {soc::Placement{cpu, options[o].onCpu->onCpu},
             soc::Placement{gpu, options[o].onGpu->onGpu},
             soc::Placement{dla, recognition}},
            soc::StopPolicy::FirstFinish);
        double worst = 100.0;
        for (const auto &po : out.placements)
            worst = std::min(worst, po.relativeSpeed);
        std::printf("placement %d measured on the board: CPU %.1f%%, "
                    "GPU %.1f%%, DLA %.1f%% -> pipeline %.1f%%\n",
                    o + 1, out.placements[0].relativeSpeed,
                    out.placements[1].relativeSpeed,
                    out.placements[2].relativeSpeed, worst);
    }
    std::printf("\nThe placement chosen from PCCS predictions alone "
                "should also win on the board.\n");
    return 0;
}
