/**
 * @file
 * A memory-controller scheduling study on the cycle-level DRAM
 * simulator (the Section 2.3 methodology as a reusable tool): how does
 * each registered policy trade bandwidth against fairness for a
 * latency-sensitive core co-located with streaming traffic?
 */

#include <cstdio>
#include <string>

#include "dram/system.hh"

using namespace pccs;
using namespace pccs::dram;

namespace {

struct Outcome
{
    double victimSpeed;   //!< % of the victim core's solo speed
    double totalBandwidth; //!< GB/s served in the window
    double hitRate;       //!< row-buffer hit rate, %
};

Outcome
study(const std::string &policy)
{
    constexpr Cycles warmup = 15000;
    constexpr Cycles window = 60000;

    auto run_victim = [&](bool with_aggressors) {
        DramSystem sys(table1Config(), policy);
        TrafficParams victim;
        victim.source = 0;
        victim.demand = 8.0; // latency-sensitive, low demand
        victim.seed = 1;
        sys.addGenerator(victim);
        if (with_aggressors) {
            for (unsigned i = 1; i <= 6; ++i) {
                TrafficParams p;
                p.source = i;
                p.demand = 20.0; // six streaming aggressors
                p.seed = 100 + i;
                sys.addGenerator(p);
            }
        }
        sys.run(warmup);
        sys.resetMeasurement();
        sys.run(window);
        Outcome o;
        o.victimSpeed =
            static_cast<double>(sys.generator(0).completedLines());
        o.totalBandwidth =
            sys.effectiveBandwidthFraction() *
            sys.controller().config().peakBandwidth();
        o.hitRate =
            100.0 * sys.controller().stats().rowBufferHitRate();
        return o;
    };

    const Outcome solo = run_victim(false);
    Outcome corun = run_victim(true);
    corun.victimSpeed = 100.0 * corun.victimSpeed / solo.victimSpeed;
    return corun;
}

} // namespace

int
main()
{
    std::printf("One latency-sensitive core (8 GB/s) against six "
                "streaming aggressors (20 GB/s each)\non the Table 1 "
                "DDR4-3200 system (102.4 GB/s peak):\n\n");
    std::printf("%-10s %18s %18s %14s\n", "policy", "victim speed (%)",
                "total BW (GB/s)", "row hits (%)");
    for (const std::string &policy : schedulerNames()) {
        const Outcome o = study(policy);
        std::printf("%-10s %18.1f %18.1f %14.1f\n",
                    policy.c_str(), o.victimSpeed,
                    o.totalBandwidth, o.hitRate);
    }
    std::printf("\nReading: FR-FCFS maximizes bandwidth and row hits "
                "but can starve the victim; the fairness-aware\n"
                "policies (ATLAS/TCM/SMS) protect it at a modest "
                "bandwidth cost -- the trade-off that motivates the\n"
                "paper's three-region slowdown shapes.\n");
    return 0;
}
