/**
 * @file
 * Quickstart: the complete PCCS workflow in ~60 lines.
 *
 *  1. Pick (or define) an SoC.
 *  2. Build the per-PU slowdown models from calibrators only -- no
 *     application co-run measurements needed (the processor-centric
 *     methodology of Section 3.2).
 *  3. Profile your kernels standalone (bandwidth demand).
 *  4. Predict co-run slowdowns for any placement.
 */

#include <cstdio>

#include "calib/calibrator.hh"
#include "pccs/builder.hh"
#include "soc/simulator.hh"

using namespace pccs;

int
main()
{
    // 1. An SoC modeled after the NVIDIA Jetson AGX Xavier: CPU, GPU
    //    and DLA sharing 137 GB/s of LPDDR4x.
    const soc::SocConfig soc = soc::xavierLike();
    const soc::SocSimulator board(soc);
    std::printf("SoC: %s, peak memory bandwidth %.1f GB/s\n",
                soc.name.c_str(), soc.memory.peakBandwidth);

    // 2. Build the GPU's three-region slowdown model. The only inputs
    //    are synthetic calibrator sweeps on this SoC.
    const std::size_t gpu = static_cast<std::size_t>(
        soc.puIndex(soc::PuKind::Gpu));
    const model::PccsModel gpu_model = model::buildModel(board, gpu);
    const model::PccsParams &p = gpu_model.params();
    std::printf("GPU model: normalBW=%.1f intensiveBW=%.1f "
                "CBP=%.1f TBWDC=%.1f rateN=%.2f %%/GBps\n\n",
                p.normalBw, p.intensiveBw, p.cbp, p.tbwdc, p.rateN);

    // 3. Profile a kernel standalone. Here: a streaming kernel with
    //    an operational intensity tuned to demand ~70 GB/s.
    const soc::KernelProfile kernel = calib::makeCalibrator(
        board.model(), soc.pus[gpu], 70.0);
    const soc::StandaloneProfile prof = board.profile(gpu, kernel);
    std::printf("kernel '%s': standalone demand %.1f GB/s "
                "(region: %s)\n\n",
                kernel.name.c_str(), prof.bandwidthDemand,
                model::regionName(
                    gpu_model.classify(prof.bandwidthDemand)));

    // 4. Predict the co-run slowdown under external memory pressure
    //    from the other PUs, and compare with the simulated truth.
    std::printf("external demand -> predicted RS | simulated RS\n");
    for (GBps y = 0.0; y <= 100.0; y += 20.0) {
        const double predicted =
            gpu_model.relativeSpeed(prof.bandwidthDemand, y);
        const double actual =
            board.relativeSpeedUnderPressure(gpu, kernel, y);
        std::printf("  %5.1f GB/s   ->   %5.1f %%     |   %5.1f %%\n",
                    y, predicted, actual);
    }
    std::printf("\nDone. See examples/autonomous_vehicle.cpp and "
                "examples/design_explorer.cpp for real scenarios.\n");
    return 0;
}
