/**
 * @file
 * The full Figure 1 design question: *which processing units should go
 * on the SoC*? Three candidate designs with comparable silicon budgets
 * are compared for a camera-heavy autonomous workload (one clustering
 * task plus two concurrent CNN inference streams), entirely
 * pre-silicon: each candidate is described with the SocBuilder, its
 * per-PU PCCS models are built from calibrators, and the placement
 * optimizer picks the best task mapping per design.
 *
 *   design A: CPU + two general-purpose GPUs
 *   design B: CPU + GPU + DLA            (the Xavier recipe)
 *   design C: CPU + two DLAs
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "calib/calibrator.hh"
#include "common/table.hh"
#include "pccs/builder.hh"
#include "pccs/placement.hh"
#include "soc/builder.hh"
#include "workloads/nn.hh"
#include "workloads/rodinia.hh"

using namespace pccs;

namespace {

/** Rough silicon-cost proxy: aggregate TFlop/s of compute (area-ish). */
double
costProxy(const soc::SocConfig &soc)
{
    double cost = 0.0;
    for (const auto &pu : soc.pus)
        cost += pu.flopsPerCycle * pu.frequency / 1e6;
    return cost;
}

/** A CNN inference task: native on DLA-class PUs, portable to GPUs. */
model::PlacementTask
inferenceTask(const std::string &name, const soc::SocConfig &soc,
              const soc::ExecutionModel &exec)
{
    model::PlacementTask t;
    t.name = name;
    for (const auto &pu : soc.pus) {
        switch (pu.kind) {
          case soc::PuKind::Dla:
            t.options.push_back(workloads::resnet50Dla());
            break;
          case soc::PuKind::Gpu: {
            // The GPU implementation of the same network draws more
            // bandwidth (no weight-stationary buffering).
            soc::KernelProfile k =
                calib::makeCalibrator(exec, pu, 45.0, 0.94);
            k.name = name + "-on-gpu";
            k.workBytes = 2.4e9;
            t.options.push_back(soc::PhasedWorkload::single(k));
            break;
          }
          case soc::PuKind::Cpu:
            t.options.push_back({}); // too slow to be worth modeling
            break;
        }
    }
    return t;
}

model::PlacementTask
clusteringTask(const soc::SocConfig &soc)
{
    model::PlacementTask t;
    t.name = "clustering";
    for (const auto &pu : soc.pus) {
        if (pu.kind == soc::PuKind::Dla)
            t.options.push_back({});
        else
            t.options.push_back(soc::PhasedWorkload::single(
                workloads::rodiniaKernel("streamcluster", pu.kind)));
    }
    return t;
}

} // namespace

int
main()
{
    // Candidate designs, near-equal memory systems and CPU clusters.
    std::vector<soc::SocConfig> designs;
    designs.push_back(
        soc::SocBuilder("A: CPU + 2x GPU")
            .memory(137.0)
            .addCpu("cpu", 2265.0, 64.0, 93.0)
            .addGpu("gpu0", 1377.0, 1024.0, 127.0)
            .addGpu("gpu1", 1377.0, 1024.0, 127.0)
            .build());
    designs.push_back(
        soc::SocBuilder("B: CPU + GPU + DLA")
            .memory(137.0)
            .addCpu("cpu", 2265.0, 64.0, 93.0)
            .addGpu("gpu", 1377.0, 1024.0, 127.0)
            .addDla("dla", 1395.0, 512.0, 30.0)
            .build());
    designs.push_back(
        soc::SocBuilder("C: CPU + 2x DLA")
            .memory(137.0)
            .addCpu("cpu", 2265.0, 64.0, 93.0)
            .addDla("dla0", 1395.0, 512.0, 30.0)
            .addDla("dla1", 1395.0, 512.0, 30.0)
            .build());

    std::printf("Workload: clustering + two concurrent CNN inference "
                "streams.\nScoring: best task placement per design "
                "(PCCS-predicted worst per-task relative speed),\n"
                "with a silicon-cost proxy for what that performance "
                "costs.\n\n");

    Table t({"design", "best placement", "worst task RS (%)",
             "cost proxy", "RS per cost"});
    for (const auto &design : designs) {
        const soc::SocSimulator sim(design);

        std::vector<std::unique_ptr<model::PccsModel>> owned;
        std::vector<const model::SlowdownPredictor *> models;
        for (std::size_t p = 0; p < design.pus.size(); ++p) {
            owned.push_back(std::make_unique<model::PccsModel>(
                model::buildModel(sim, p)));
            models.push_back(owned.back().get());
        }

        const std::vector<model::PlacementTask> tasks{
            clusteringTask(design),
            inferenceTask("infer-cam0", design, sim.model()),
            inferenceTask("infer-cam1", design, sim.model())};
        const auto choices =
            model::enumeratePlacements(sim, models, tasks);
        if (choices.empty()) {
            t.addRow({design.name, "infeasible", "-",
                      fmtDouble(costProxy(design), 2), "-"});
            continue;
        }
        const auto &best = choices.front();
        std::string placement;
        for (std::size_t i = 0; i < tasks.size(); ++i) {
            if (i)
                placement += ", ";
            placement += tasks[i].name + "->" +
                         design.pus[best.puAssignment[i]].name;
        }
        const double cost = costProxy(design);
        t.addRow({design.name, placement, fmtDouble(best.score, 1),
                  fmtDouble(cost, 2),
                  fmtDouble(best.score / cost, 1)});
    }
    std::printf("%s\n", t.str().c_str());

    std::printf(
        "Reading: for an inference-heavy workload, specialized DLAs "
        "deliver comparable or better worst-task\nperformance at a "
        "fraction of the silicon cost of a second GPU (and their low "
        "bandwidth draw leaves\nheadroom for the clustering task) -- "
        "the reason SoCs like Xavier pair one GPU with DLAs.\n"
        "All of this was computed pre-silicon from calibrator sweeps "
        "alone, the paper's intended workflow.\n");
    return 0;
}
